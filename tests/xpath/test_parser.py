"""Parser tests: AST shapes, abbreviations, precedence, errors."""

import pytest

from repro.xpath.ast import (
    BinaryOp,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    UnionExpr,
    VariableRef,
)
from repro.xpath.parser import XPathSyntaxError, parse_xpath


class TestLocationPaths:
    def test_absolute_single_step(self):
        path = parse_xpath("/patients")
        assert isinstance(path, LocationPath)
        assert path.absolute
        assert path.steps == (Step("child", NameTest("patients")),)

    def test_bare_slash_selects_document(self):
        path = parse_xpath("/")
        assert path == LocationPath(True, ())

    def test_relative_path(self):
        path = parse_xpath("a/b")
        assert not path.absolute
        assert [s.test.name for s in path.steps] == ["a", "b"]

    def test_double_slash_desugars(self):
        path = parse_xpath("//a")
        assert path.steps[0] == Step("descendant-or-self", KindTest("node"))
        assert path.steps[1] == Step("child", NameTest("a"))

    def test_inner_double_slash(self):
        path = parse_xpath("/a//b")
        assert [s.axis for s in path.steps] == [
            "child",
            "descendant-or-self",
            "child",
        ]

    def test_explicit_axes(self):
        path = parse_xpath("ancestor-or-self::x/following-sibling::*")
        assert path.steps[0].axis == "ancestor-or-self"
        assert path.steps[1].axis == "following-sibling"
        assert path.steps[1].test == NameTest("*")

    def test_abbreviated_dot_and_dotdot(self):
        path = parse_xpath("../.")
        assert path.steps[0] == Step("parent", KindTest("node"))
        assert path.steps[1] == Step("self", KindTest("node"))

    def test_attribute_abbreviation(self):
        path = parse_xpath("@id")
        assert path.steps[0] == Step("attribute", NameTest("id"))

    def test_kind_tests(self):
        assert parse_xpath("text()").steps[0].test == KindTest("text")
        assert parse_xpath("node()").steps[0].test == KindTest("node")
        assert parse_xpath("comment()").steps[0].test == KindTest("comment")
        pi = parse_xpath("processing-instruction('php')").steps[0].test
        assert pi == KindTest("processing-instruction", "php")

    def test_predicates_attach_to_step(self):
        path = parse_xpath("/a[1][2]")
        assert len(path.steps[0].predicates) == 2

    def test_unknown_axis_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("sideways::a")


class TestExpressions:
    def test_or_and_precedence(self):
        expr = parse_xpath("1 or 2 and 3")
        assert isinstance(expr, BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"

    def test_equality_vs_relational_precedence(self):
        expr = parse_xpath("1 = 2 < 3")
        assert expr.op == "="
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "<"

    def test_arithmetic_precedence(self):
        expr = parse_xpath("1 + 2 * 3")
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_unary_minus(self):
        expr = parse_xpath("-1")
        assert isinstance(expr, Negate)
        assert expr.operand == NumberLiteral(1.0)

    def test_double_negation(self):
        expr = parse_xpath("--1")
        assert isinstance(expr, Negate) and isinstance(expr.operand, Negate)

    def test_union(self):
        expr = parse_xpath("//a | //b")
        assert isinstance(expr, UnionExpr)

    def test_parentheses_override(self):
        expr = parse_xpath("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "+"

    def test_literals(self):
        assert parse_xpath("'s'") == Literal("s")
        assert parse_xpath("2.5") == NumberLiteral(2.5)

    def test_variable_reference(self):
        assert parse_xpath("$USER") == VariableRef("USER")

    def test_function_call_with_args(self):
        expr = parse_xpath("concat('a', 'b', 'c')")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "concat"
        assert len(expr.args) == 3

    def test_function_call_no_args(self):
        assert parse_xpath("last()") == FunctionCall("last")

    def test_filter_expression(self):
        expr = parse_xpath("$x[1]")
        assert isinstance(expr, FilterExpr)
        assert expr.primary == VariableRef("x")

    def test_path_continues_from_filter(self):
        expr = parse_xpath("$x/a")
        assert isinstance(expr, PathExpr)
        assert expr.start == VariableRef("x")
        assert expr.steps[0].test == NameTest("a")

    def test_kind_test_not_function_call(self):
        """text() at path position is a node test, not a call."""
        expr = parse_xpath("/a/text()")
        assert isinstance(expr, LocationPath)
        assert expr.steps[-1].test == KindTest("text")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "/a[",
            "/a]",
            "1 +",
            "(1",
            "f(1,",
            "/a b",
            "//",
            "$",
            "/a[']",
            "processing-instruction(5)",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)

    def test_literal_only_on_pi(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("text('x')")


class TestCaching:
    def test_same_expression_returns_same_ast(self):
        assert parse_xpath("/a/b/c") is parse_xpath("/a/b/c")

    def test_str_roundtrips_reasonably(self):
        # __str__ output is for diagnostics; just ensure it's stable.
        expr = parse_xpath("/a//b[1]")
        assert "descendant-or-self" in str(expr)
