"""Serialization of :class:`XMLDocument` trees and views back to text.

Two renderers are provided:

- :func:`serialize` -- standard XML text, optionally indented.  Views
  produced by the security layer are ordinary documents whose hidden
  labels read ``RESTRICTED``, so they serialize with no special casing.
- :func:`render_tree` -- the ASCII tree notation the paper uses in its
  figures (``/patients``, ``text()tonsillitis`` ...), which EXPERIMENTS.md
  uses to show paper-vs-reproduced output side by side.
"""

from __future__ import annotations

from typing import List, Optional

from .document import XMLDocument
from .labels import NodeId
from .node import NodeKind

__all__ = ["serialize", "render_tree"]

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]


def _escape_text(value: str) -> str:
    for raw, esc in _ESCAPES:
        value = value.replace(raw, esc)
    return value


def _escape_attr(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


def serialize(
    doc: XMLDocument,
    nid: Optional[NodeId] = None,
    indent: Optional[str] = None,
) -> str:
    """Serialize a document (or the subtree at ``nid``) to XML text.

    Args:
        doc: the document to serialize.
        nid: subtree root; defaults to the document node.
        indent: indentation unit (e.g. ``"  "``) for pretty printing, or
            None for compact single-line output.
    """
    start = nid if nid is not None else doc.document_node.nid
    pieces: List[str] = []
    _serialize_into(doc, start, pieces, indent, 0)
    text = "".join(pieces)
    return text.rstrip("\n") if indent else text


def _serialize_into(
    doc: XMLDocument,
    nid: NodeId,
    out: List[str],
    indent: Optional[str],
    depth: int,
) -> None:
    node = doc.node(nid)
    pad = indent * depth if indent else ""
    if node.kind is NodeKind.DOCUMENT:
        for child in doc.children(nid):
            _serialize_into(doc, child, out, indent, depth)
        return
    if node.kind is NodeKind.TEXT:
        out.append(pad + _escape_text(node.label))
        if indent:
            out.append("\n")
        return
    if node.kind is NodeKind.COMMENT:
        out.append(f"{pad}<!--{node.label}-->")
        if indent:
            out.append("\n")
        return
    if node.kind is NodeKind.PROCESSING_INSTRUCTION:
        out.append(f"{pad}<?{node.label} {node.value}?>")
        if indent:
            out.append("\n")
        return
    if node.kind is NodeKind.ATTRIBUTE:
        # Attributes are serialized inline by their element.
        return
    attrs = "".join(
        f' {doc.node(a).label}="{_escape_attr(doc.node(a).value)}"'
        for a in doc.attributes(nid)
    )
    children = doc.children(nid)
    if not children:
        out.append(f"{pad}<{node.label}{attrs}/>")
        if indent:
            out.append("\n")
        return
    # Any text child makes this mixed content: indentation would inject
    # significant whitespace, so the whole element serializes compactly.
    has_text = any(doc.node(c).kind is NodeKind.TEXT for c in children)
    if has_text:
        compact: List[str] = []
        for child in children:
            _serialize_into(doc, child, compact, None, 0)
        content = "".join(compact)
        out.append(f"{pad}<{node.label}{attrs}>{content}</{node.label}>")
        if indent:
            out.append("\n")
        return
    out.append(f"{pad}<{node.label}{attrs}>")
    if indent:
        out.append("\n")
    for child in children:
        _serialize_into(doc, child, out, indent, depth + 1)
    out.append(f"{pad}</{node.label}>")
    if indent:
        out.append("\n")


def render_tree(doc: XMLDocument, nid: Optional[NodeId] = None) -> str:
    """Render the paper's figure notation: one node per line, indented.

    Element nodes print as ``/label``, text nodes as ``text()value``,
    attributes as ``@name=value`` -- matching figures 1 and 2 of the
    paper so reproduced output can be compared by eye.
    """
    start = nid if nid is not None else doc.document_node.nid
    lines: List[str] = []
    _render_into(doc, start, lines, 0)
    return "\n".join(lines)


def _render_into(doc: XMLDocument, nid: NodeId, lines: List[str], depth: int) -> None:
    node = doc.node(nid)
    pad = "  " * depth
    if node.kind is NodeKind.DOCUMENT:
        lines.append(pad + "/")
    elif node.kind is NodeKind.TEXT:
        lines.append(f"{pad}text(){node.label}")
    elif node.kind is NodeKind.ATTRIBUTE:
        lines.append(f"{pad}@{node.label}={node.value}")
    else:
        lines.append(f"{pad}/{node.label}")
    for attr in doc.attributes(nid) if node.kind is NodeKind.ELEMENT else []:
        _render_into(doc, attr, lines, depth + 1)
    for child in doc.children(nid):
        _render_into(doc, child, lines, depth + 1)
