"""Online integrity scrubbing: find bit rot before recovery trips on it.

Crash recovery (PR 5) and replica divergence quarantine (PR 7) only
examine data when something *asks* for it -- a reboot, a poll.  Silent
corruption at rest (a flipped bit in a WAL segment, a damaged
checkpoint snapshot) sits undetected until the worst possible moment:
the recovery that needed the bytes.  A :class:`Scrubber` walks the log
directory **online** -- record checksums, segment structure, checkpoint
integrity headers -- on a resumable cursor with a per-step byte budget,
holding no database lock across I/O, so a serving primary can verify
its own disk in the background.

What scrub concludes about damage it finds:

- Damage at the live tail of the *last* segment with nothing decodable
  after it is an **in-flight append** (or a crash's torn tail) -- the
  torn-tail rule owns it; scrub reports it as benign and never
  quarantines a live writer's tail.
- Damage with an intact record *behind* it (or damage in a non-last
  segment) is **non-tail corruption** -- a crash cannot produce it.
  The segment is quarantined (sidecar marker, see
  :data:`repro.wal.QUARANTINE_SUFFIX`): recovery refuses to replay
  past it in strict mode, a :class:`~repro.wal.WalStream` raises a gap
  instead of serving it, and re-opening the log for writing is refused
  until anti-entropy repair (:func:`repro.replication.repair_from_peer`)
  replaces the damage from a healthy peer.
- A checkpoint whose integrity header is missing, or (deep mode) whose
  recomputed SHA-256 disagrees with the recorded one, is reported;
  recovery's newest-first fallback already skips it, and repair
  replaces it.
- An ``EIO`` reading a segment is reported (``read_errors``) but does
  not quarantine: a failing *read* proves the device is sick, not that
  the bytes are wrong -- the failure detector owns sick disks.

:class:`repro.serving.DatabaseServer` runs a scrubber as an optional
background pass (``scrub_interval``) and surfaces the counters under
``stats()["scrub"]``.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .storage import _split_integrity, snapshot_digest
from .testing.diskfaults import disk
from .wal.log import (
    Checkpoint,
    _segment_files,
    classify_damage,
    list_checkpoints,
    quarantine_reason,
    quarantine_segment,
    scan_segment,
)

__all__ = [
    "ScrubFinding",
    "ScrubReport",
    "Scrubber",
    "scrub_directory",
]


@dataclass(frozen=True)
class ScrubFinding:
    """One problem a scrub pass surfaced.

    Attributes:
        path: the file holding the problem.
        kind: ``"wal-segment"`` or ``"checkpoint"``.
        reason: human-readable diagnosis.
        offset: byte offset of the damage (0 when whole-file).
        quarantined: True when scrub quarantined the segment (non-tail
            corruption, proven by an intact record past the damage).
        benign: True for damage the torn-tail rule owns (an in-flight
            or crash-torn live tail) -- reported for visibility, no
            action needed.
    """

    path: str
    kind: str
    reason: str
    offset: int = 0
    quarantined: bool = False
    benign: bool = False

    def __str__(self) -> str:
        flag = (
            "QUARANTINED" if self.quarantined
            else ("benign" if self.benign else "found")
        )
        return (
            f"[{flag}] {self.kind} {os.path.basename(self.path)}"
            f":{self.offset}: {self.reason}"
        )


@dataclass
class ScrubReport:
    """What one scrub step (or full pass) verified and found.

    Attributes:
        findings: every problem surfaced, in scan order.
        records_verified: WAL records whose CRC and structure checked
            out during this report's scope.
        bytes_verified: bytes read and verified.
        segments_verified: segments that read cleanly end to end.
        checkpoints_verified: checkpoint snapshots whose integrity
            check passed.
        pass_completed: True when this step finished a full pass over
            the directory (the cursor wrapped).
    """

    findings: List[ScrubFinding] = field(default_factory=list)
    records_verified: int = 0
    bytes_verified: int = 0
    segments_verified: int = 0
    checkpoints_verified: int = 0
    pass_completed: bool = False

    @property
    def clean(self) -> bool:
        """True when nothing needing action was found (benign tail
        findings do not count -- the torn-tail rule owns those)."""
        return all(finding.benign for finding in self.findings)

    @property
    def quarantined(self) -> List[ScrubFinding]:
        """The findings that quarantined a segment."""
        return [f for f in self.findings if f.quarantined]


class Scrubber:
    """Incremental integrity verification over one log directory.

    The cursor advances segment by segment under a per-step byte
    budget; when every segment has been verified the checkpoints are
    checked and the pass completes (``last_full_pass`` timestamp, the
    cursor rewinds).  Segments pruned between steps are simply skipped
    -- retention moving the horizon is not damage.

    All file I/O happens outside any database lock (the scrubber reads
    the directory exactly like a follower does), so a background scrub
    never blocks the serving path.  :meth:`step` is serialized with an
    internal lock; counters are cumulative across steps.

    Args:
        directory: the WAL directory to verify.
        budget_bytes: default per-step byte budget (None = unbounded,
            every step is a full pass).
        deep: also recompute every checkpoint snapshot's SHA-256
            (instead of only checking the header's presence) -- more
            I/O, catches rot inside snapshot bodies.
        clock: time source for ``last_full_pass`` (injectable).
    """

    def __init__(
        self,
        directory: str,
        *,
        budget_bytes: Optional[int] = None,
        deep: bool = False,
        clock=time.time,
    ) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive (or None)")
        self._directory = os.path.abspath(directory)
        self._budget = budget_bytes
        self._deep = deep
        self._clock = clock
        self._lock = threading.Lock()
        self._cursor: Optional[str] = None  # last verified segment path
        self._counters: Dict[str, Any] = {
            "steps": 0,
            "passes": 0,
            "last_full_pass": 0.0,
            "records_verified": 0,
            "bytes_verified": 0,
            "segments_verified": 0,
            "segments_quarantined": 0,
            "checkpoints_verified": 0,
            "checkpoint_failures": 0,
            "read_errors": 0,
            "findings": 0,
        }

    @property
    def directory(self) -> str:
        """The directory being scrubbed."""
        return self._directory

    @property
    def counters(self) -> Dict[str, Any]:
        """Cumulative counters (records_verified, segments_quarantined,
        last_full_pass, ...), copied."""
        with self._lock:
            return dict(self._counters)

    def run(self) -> ScrubReport:
        """One full pass over the directory, budget ignored."""
        return self.step(budget_bytes=0)

    def step(self, budget_bytes: Optional[int] = None) -> ScrubReport:
        """Verify up to ``budget_bytes`` (default: the constructor's
        budget; 0 = unbounded) and return what this step covered.

        The cursor resumes where the previous step stopped; a step that
        reaches the end of the directory also verifies the checkpoints
        and marks the pass complete.
        """
        budget = self._budget if budget_bytes is None else (
            None if budget_bytes == 0 else budget_bytes
        )
        with self._lock:
            report = ScrubReport()
            self._counters["steps"] += 1
            files = _segment_files(self._directory)
            pending = [
                (first, path) for first, path in files
                if self._cursor is None
                or os.path.basename(path) > os.path.basename(self._cursor)
            ]
            last_path = files[-1][1] if files else None
            spent = 0
            for first_lsn, path in pending:
                if budget is not None and spent >= budget:
                    self._fold(report)
                    return report  # budget exhausted; resume next step
                spent += self._verify_segment(
                    path, first_lsn, path == last_path, report
                )
                self._cursor = path
            for checkpoint in list_checkpoints(self._directory):
                spent += self._verify_checkpoint(checkpoint, report)
            report.pass_completed = True
            self._cursor = None
            self._counters["passes"] += 1
            self._counters["last_full_pass"] = self._clock()
            self._fold(report)
            return report

    def _fold(self, report: ScrubReport) -> None:
        self._counters["records_verified"] += report.records_verified
        self._counters["bytes_verified"] += report.bytes_verified
        self._counters["segments_verified"] += report.segments_verified
        self._counters["checkpoints_verified"] += report.checkpoints_verified
        self._counters["findings"] += len(report.findings)
        self._counters["segments_quarantined"] += len(report.quarantined)

    def _verify_segment(
        self, path: str, first_lsn: int, is_last: bool, report: ScrubReport
    ) -> int:
        """CRC-verify one segment; returns the bytes it cost."""
        existing = quarantine_reason(path)
        if existing is not None:
            report.findings.append(
                ScrubFinding(
                    path, "wal-segment",
                    f"already quarantined: {existing}",
                    quarantined=True,
                )
            )
            return 0
        try:
            size = os.path.getsize(path)
        except OSError:
            return 0  # pruned between the listing and now
        records, torn = scan_segment(path, expect_lsn=first_lsn)
        report.records_verified += len(records)
        report.bytes_verified += size
        if torn is None:
            report.segments_verified += 1
            return size
        if torn.reason.startswith("segment unreadable"):
            # A failing read proves the device is sick, not the bytes:
            # report, let the failure detector own the disk, re-check
            # on the next pass.
            self._counters["read_errors"] += 1
            report.findings.append(
                ScrubFinding(path, "wal-segment", torn.reason, torn.offset)
            )
            return 0
        damage = classify_damage(torn)
        if is_last and damage.tail:
            # The live writer's tail: an in-flight append or a crash's
            # torn tail.  The torn-tail rule owns it; a scrubber that
            # quarantined this would false-positive on every mid-append
            # race with the writer.
            report.findings.append(
                ScrubFinding(
                    path, "wal-segment", torn.reason, torn.offset,
                    benign=True,
                )
            )
            return size
        reason = (
            f"{torn.reason} at offset {torn.offset}"
            + (
                f" (non-tail: intact record at offset "
                f"{damage.resync_offset}, lsn {damage.resync_lsn})"
                if not damage.tail and damage.resync_offset
                else " (damage in a non-last segment)"
            )
        )
        quarantine_segment(path, reason)
        report.findings.append(
            ScrubFinding(
                path, "wal-segment", reason, torn.offset, quarantined=True
            )
        )
        return size

    def _verify_checkpoint(
        self, checkpoint: Checkpoint, report: ScrubReport
    ) -> int:
        """Verify one snapshot's integrity header; returns bytes read."""
        if not self._deep:
            if snapshot_digest(checkpoint.path) is None:
                self._counters["checkpoint_failures"] += 1
                report.findings.append(
                    ScrubFinding(
                        checkpoint.path, "checkpoint",
                        "missing or unreadable integrity header",
                    )
                )
                return 0
            report.checkpoints_verified += 1
            return 256  # header line only
        try:
            with disk.open(checkpoint.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            self._counters["read_errors"] += 1
            report.findings.append(
                ScrubFinding(
                    checkpoint.path, "checkpoint", f"unreadable ({exc})"
                )
            )
            return 0
        cost = len(text)
        report.bytes_verified += cost
        recorded, body = _split_integrity(text)
        if recorded is None:
            self._counters["checkpoint_failures"] += 1
            report.findings.append(
                ScrubFinding(
                    checkpoint.path, "checkpoint", "no integrity header"
                )
            )
            return cost
        actual = hashlib.sha256(
            body.rstrip("\n").encode("utf-8")
        ).hexdigest()
        if actual != recorded:
            self._counters["checkpoint_failures"] += 1
            report.findings.append(
                ScrubFinding(
                    checkpoint.path, "checkpoint",
                    f"sha256 mismatch (recorded {recorded[:12]}..., "
                    f"actual {actual[:12]}...)",
                )
            )
            return cost
        report.checkpoints_verified += 1
        return cost


def scrub_directory(
    directory: str, *, deep: bool = False
) -> ScrubReport:
    """One full scrub pass over ``directory`` (the CLI's entry point)."""
    return Scrubber(directory, deep=deep).run()
