"""Lazy (filter-based) view enforcement -- the paper's proposed follow-up.

The paper's conclusion sketches an alternative to materializing each
user's view: "applying filters reflecting the user privileges on the
queries and then evaluating the queries on the source document" (after
Fundulaki & Marx [9]), and asks whether such filtered evaluation can
"include RESTRICTED labels" compatibly with the authorized views.

:class:`LazyView` answers that question constructively.  It exposes the
*read* interface of :class:`~repro.xmltree.document.XMLDocument`, but
every accessor enforces axioms 15-17 on the fly against the source:

- children/descendants are filtered to nodes whose whole ancestor chain
  is visible;
- labels of position-only nodes read ``RESTRICTED``;
- string-values aggregate only visible text.

Because the XPath engine is written against that read interface, any
query can run directly over a :class:`LazyView` -- no copy, no pruning
pass -- and is guaranteed to return exactly what it would return on the
materialized view.  The equivalence is differentially tested
(``tests/security/test_lazy.py``) and the cost trade-off is measured by
benchmark E16: lazy wins when queries touch a small fraction of the
document; materialization amortizes when one view serves many queries.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..xmltree.document import XMLDocument
from ..xmltree.labels import DOCUMENT_ID, NodeId
from ..xmltree.node import Node, NodeKind, RESTRICTED
from .perm import PermissionResolver, PermissionTable
from .policy import Policy
from .privileges import Privilege

__all__ = ["LazyView", "build_lazy_view"]


class LazyView:
    """A per-access-checked view over a source document.

    Implements the read interface of :class:`XMLDocument` (the portion
    the XPath evaluator and the serializer use), enforcing the view
    axioms on every call.  Not a subclass: mutation methods simply do
    not exist here, which is exactly right for a view.

    Args:
        source: the source document (theory ``db``).
        permissions: the user's derived permission table (axiom 14).
    """

    def __init__(
        self,
        source: XMLDocument,
        permissions: PermissionTable,
        policy: Optional[Policy] = None,
    ) -> None:
        self._source = source
        self._permissions = permissions
        #: The policy the view was derived under (set by
        #: :func:`build_lazy_view`); lets the secure write executor
        #: re-derive views between script steps, as with View.
        self.policy = policy
        self._visible_cache: Dict[NodeId, bool] = {DOCUMENT_ID: True}
        self._len_cache: Optional[Tuple[int, int]] = None

    @property
    def doc(self) -> "LazyView":
        """Self: a LazyView *is* the queryable view document, which
        makes it a drop-in replacement for
        :attr:`repro.security.view.View.doc`."""
        return self

    # ------------------------------------------------------------------
    # visibility (axioms 15-17, evaluated on demand)
    # ------------------------------------------------------------------
    @property
    def user(self) -> str:
        return self._permissions.user

    @property
    def source(self) -> XMLDocument:
        return self._source

    @property
    def permissions(self) -> PermissionTable:
        return self._permissions

    def visible(self, nid: NodeId) -> bool:
        """True iff the node is in the view: itself readable or
        positional, and its parent visible (the pruning condition).

        Iterative: climbs to the nearest cached ancestor (the document
        node is always cached), then fills the cache back down -- no
        recursion, so arbitrarily deep documents cannot overflow the
        stack.
        """
        cache = self._visible_cache
        cached = cache.get(nid)
        if cached is not None:
            return cached
        if nid not in self._source:
            cache[nid] = False
            return False
        chain = []  # uncached ancestors-or-self, nearest first
        current = nid
        while current not in cache:
            chain.append(current)
            current = current.parent()
        result = cache[current]
        perms = self._permissions
        for node in reversed(chain):
            if result:  # ancestors of an in-source node are in source
                result = perms.holds(node, Privilege.READ) or perms.holds(
                    node, Privilege.POSITION
                )
            cache[node] = result
        return result

    def is_restricted(self, nid: NodeId) -> bool:
        """True iff the node is shown with the RESTRICTED label."""
        return (
            self.visible(nid)
            and not nid.is_document
            and not self._permissions.holds(nid, Privilege.READ)
        )

    # ------------------------------------------------------------------
    # the XMLDocument read interface
    # ------------------------------------------------------------------
    @property
    def document_node(self) -> Node:
        return self._source.document_node

    @property
    def root(self) -> Optional[NodeId]:
        kids = self.children(DOCUMENT_ID)
        return kids[0] if kids else None

    @property
    def scheme(self):
        return self._source.scheme

    def __contains__(self, nid: NodeId) -> bool:
        return self.visible(nid)

    def __len__(self) -> int:
        # Memoized against the source's mutation stamp: repeated len()
        # probes (the evaluator's last()/size checks) must not re-walk
        # the whole visible tree.
        stamp = self._source.mutation_stamp
        if self._len_cache is None or self._len_cache[0] != stamp:
            self._len_cache = (stamp, sum(1 for _ in self.all_nodes()))
        return self._len_cache[1]

    def node(self, nid: NodeId) -> Node:
        """The visible node, with RESTRICTED substitution applied."""
        from ..xmltree.document import DocumentError

        if not self.visible(nid):
            raise DocumentError(f"no node with id {nid!r}")
        node = self._source.node(nid)
        if self.is_restricted(nid):
            if node.kind is NodeKind.ATTRIBUTE and node.value:
                # Hide the value as well as the name (see ViewBuilder).
                return Node(nid, NodeKind.ATTRIBUTE, RESTRICTED, RESTRICTED)
            return node.relabelled(RESTRICTED)
        return node

    def get(self, nid: NodeId) -> Optional[Node]:
        """The visible node, or None for invisible/unknown ids."""
        return self.node(nid) if self.visible(nid) else None

    def label(self, nid: NodeId) -> str:
        """The label the user sees (RESTRICTED where position-only)."""
        return self.node(nid).label

    def kind(self, nid: NodeId) -> NodeKind:
        """The node kind (kinds are never hidden, labels are)."""
        return self.node(nid).kind

    def parent(self, nid: NodeId) -> Optional[NodeId]:
        """The parent id (visible whenever the node is)."""
        self.node(nid)
        return None if nid.is_document else nid.parent()

    def children(self, nid: NodeId) -> List[NodeId]:
        """Visible non-attribute children, in document order."""
        return [c for c in self._source.children(nid) if self.visible(c)]

    def attributes(self, nid: NodeId) -> List[NodeId]:
        """Visible attribute nodes, in document order."""
        return [a for a in self._source.attributes(nid) if self.visible(a)]

    def attribute_value(self, element: NodeId, name: str) -> Optional[str]:
        """The value of a visible attribute, or None."""
        for attr in self.attributes(element):
            node = self.node(attr)
            if node.label == name:
                return node.value
        return None

    def descendants(self, nid: NodeId) -> Iterator[NodeId]:
        """Visible proper descendants in document order (iterative:
        document depth never limits traversal)."""
        stack = list(reversed(self.children(nid)))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.children(node)))

    def descendants_or_self(self, nid: NodeId) -> Iterator[NodeId]:
        """The node, then its visible descendants."""
        yield nid
        yield from self.descendants(nid)

    def ancestors(self, nid: NodeId) -> Iterator[NodeId]:
        """Proper ancestors, nearest first."""
        self.node(nid)
        # Visibility is ancestor-closed: every ancestor of a visible
        # node is visible, so no filtering is needed.
        yield from nid.ancestors()

    def subtree(self, nid: NodeId) -> Iterator[NodeId]:
        """The visible subtree, attributes included (iterative, in the
        order node, its attributes, then each child's subtree)."""
        stack = [nid]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.children(node)))
            if not node.is_document:
                # Attributes go on top: yielded right after their owner.
                stack.extend(reversed(self.attributes(node)))

    def siblings(self, nid: NodeId) -> List[NodeId]:
        """Visible children of this node's parent (self included)."""
        parent = self.parent(nid)
        if parent is None:
            return [nid]
        return self.children(parent)

    def following_siblings(self, nid: NodeId) -> List[NodeId]:
        """Visible following siblings, in document order."""
        sibs = self.siblings(nid)
        try:
            i = sibs.index(nid)
        except ValueError:
            return []
        return sibs[i + 1 :]

    def preceding_siblings(self, nid: NodeId) -> List[NodeId]:
        """Visible preceding siblings, nearest first."""
        sibs = self.siblings(nid)
        try:
            i = sibs.index(nid)
        except ValueError:
            return []
        return list(reversed(sibs[:i]))

    def following(self, nid: NodeId) -> List[NodeId]:
        """The visible XPath following axis."""
        result: List[NodeId] = []
        current = nid
        while not current.is_document:
            for sib in self.following_siblings(current):
                result.extend(self.descendants_or_self(sib))
            current = current.parent()
        return result

    def preceding(self, nid: NodeId) -> List[NodeId]:
        """The visible XPath preceding axis, reverse document order."""
        result: List[NodeId] = []
        current = nid
        while not current.is_document:
            for sib in self.preceding_siblings(current):
                result.extend(reversed(list(self.descendants_or_self(sib))))
            current = current.parent()
        return result

    def all_nodes(self) -> List[NodeId]:
        """Every visible node id in document order."""
        return list(self.subtree(DOCUMENT_ID))

    def string_value(self, nid: NodeId) -> str:
        """XPath string-value over visible content only."""
        node = self.node(nid)
        if node.kind in (NodeKind.ELEMENT, NodeKind.DOCUMENT):
            parts = [
                self.label(d)
                for d in self.descendants(nid)
                if self._source.kind(d) is NodeKind.TEXT
            ]
            return "".join(parts)
        return node.string_value()

    def facts(self) -> Set[Tuple[NodeId, str]]:
        """The ``node_view(n, v)`` facts -- identical by construction to
        the materialized view's fact set."""
        return {(nid, self.label(nid)) for nid in self.all_nodes()}

    def path_string(self, nid: NodeId) -> str:
        """Human-readable absolute path (diagnostics only)."""
        return self._source.path_string(nid)


def build_lazy_view(
    doc: XMLDocument,
    policy: Policy,
    user: str,
    resolver: Optional[PermissionResolver] = None,
    permissions: Optional[PermissionTable] = None,
) -> LazyView:
    """Derive a :class:`LazyView` for ``user``.

    Permission resolution (axiom 14) still happens eagerly -- it is
    policy-sized, not document-sized in its output -- but no view
    document is materialized.
    """
    if permissions is None:
        if resolver is None:
            resolver = PermissionResolver()
        permissions = resolver.resolve(doc, policy, user)
    return LazyView(doc, permissions, policy)
