"""The XPath compiler: compiled == interpreted, folding, caching.

The compiled closure pipeline must be observationally identical to the
AST interpreter on every expression it accepts -- same values, same
errors.  The battery below covers the E15/E18 path shapes the policy
layer evaluates plus the compiler's own special cases (fusion, constant
folding, paper-compat predicates); the differential fault-lane tests
arm the always-on runtime check and prove it actually fires.
"""

import math

import pytest

from repro.core import medical_document
from repro.xmltree import parse_xml
from repro.xpath import (
    XPathEngine,
    XPathEvaluationError,
    evaluate,
)
from repro.xpath.compiler import (
    CompiledXPath,
    XPathDifferentialError,
    compile_expr,
    differential_enabled,
    set_differential,
)


@pytest.fixture
def differential():
    """Arm the compiled-vs-interpreted runtime check for one test."""
    before = differential_enabled()
    set_differential(True)
    yield
    set_differential(before)


@pytest.fixture
def doc():
    return parse_xml(
        "<patients>"
        "<patient><name>robert</name>"
        "<diagnosis><item>flu</item><item>cold</item></diagnosis></patient>"
        "<patient><name>martin</name>"
        "<diagnosis><item>injury</item></diagnosis></patient>"
        "<!--audit--></patients>"
    )


@pytest.fixture
def engine():
    return XPathEngine()


@pytest.fixture
def paper_engine():
    return XPathEngine(lone_variable_name_test=True, star_matches_text=True)


#: Every shape the E15 benchmark and the example policies exercise.
PATHS = (
    "/",
    "/patients",
    "/patients/patient/diagnosis",
    "//patient",
    "//item",
    "//*",
    "//patient/*",
    "//text()",
    "//comment()",
    "//node()",
    "//diagnosis/text()",
    "//patient[1]",
    "//patient[2]/diagnosis",
    "//item[position() = 2]",
    "//patient[name = 'robert']",
    "//patient[diagnosis/item]",
    "//*[name() = 'item']",
    "//patient | //item",
    "//patient/descendant-or-self::*",
    "//item/ancestor::patient",
    "//item/parent::diagnosis",
    "//patient/following-sibling::*",
    "//patient[2]/preceding-sibling::patient",
    "/patients/patient[last()]",
    "count(//item)",
    "string(//name)",
    "normalize-space(' x ')",
    "not(//nope)",
    "count(//item) + count(//patient) * 2",
    "-count(//item)",
    "10 mod 3",
    "'a' < 'b' or //patient",
)


@pytest.mark.parametrize("path", list(PATHS))
def test_compiled_matches_interpreted(engine, doc, path):
    compiled = engine.compile_evaluator(path)
    expected = engine.evaluate(doc, path)
    got = compiled.evaluate(doc)
    if isinstance(expected, float) and math.isnan(expected):
        assert math.isnan(got)
    else:
        assert got == expected


def test_compiled_from_context_node(engine, doc):
    patient = engine.select(doc, "//patient")[0]
    for path in ("diagnosis/item", "ancestor::*", "self::patient", ".//item"):
        assert engine.compile_evaluator(path).evaluate(
            doc, context_node=patient
        ) == engine.evaluate(doc, path, context_node=patient)


def test_compiled_variables(engine, doc):
    path = "//patient[name = $who]/diagnosis"
    compiled = engine.compile_evaluator(path)
    for who in ("robert", "martin", "nobody"):
        assert compiled.evaluate(doc, variables={"who": who}) == engine.evaluate(
            doc, path, variables={"who": who}
        )


def test_unbound_variable_raises(engine, doc):
    compiled = engine.compile_evaluator("//patient[name = $who]")
    with pytest.raises(XPathEvaluationError, match="unbound variable"):
        compiled.evaluate(doc)


def test_select_rejects_scalar_result(engine, doc):
    with pytest.raises(XPathEvaluationError, match="expected a node-set"):
        engine.compile_evaluator("count(//patient)").select(doc)


def test_paper_compat_lone_variable_predicate(paper_engine, doc):
    path = "/patients/*[$USER]/descendant-or-self::*"
    compiled = paper_engine.compile_evaluator(path)
    for user in ("patient", "name", "nobody"):
        assert compiled.select(doc, variables={"USER": user}) == (
            paper_engine.select(doc, path, variables={"USER": user})
        )


def test_paper_compat_star_matches_text(paper_engine, doc):
    for path in ("//*", "/patients/*", "//patient/*"):
        assert paper_engine.compile_evaluator(path).select(
            doc
        ) == paper_engine.select(doc, path)


class TestConstantFolding:
    def test_positive_integer_position_slices(self, engine, doc):
        # [2] and [1+1] both fold to the same positional slice.
        assert engine.compile_evaluator("//patient[2]").select(
            doc
        ) == engine.select(doc, "//patient[2]")
        assert engine.compile_evaluator("//patient[1 + 1]").select(
            doc
        ) == engine.select(doc, "//patient[2]")

    def test_out_of_domain_positions_select_nothing(self, engine, doc):
        for pred in ("0", "-1", "2.5", "99", "0 div 0"):
            assert engine.compile_evaluator(f"//patient[{pred}]").select(doc) == []

    def test_constant_boolean_predicates(self, engine, doc):
        assert engine.compile_evaluator("//patient[true()]").select(
            doc
        ) == engine.select(doc, "//patient")
        assert engine.compile_evaluator("//patient[1 = 1]").select(
            doc
        ) == engine.select(doc, "//patient")
        assert engine.compile_evaluator("//patient[1 = 2]").select(doc) == []
        assert engine.compile_evaluator("//patient['']").select(doc) == []

    def test_folding_preserves_laziness(self, engine, doc):
        # With a constant-false predicate ahead, a bad function in a
        # later predicate never sees a node -- exactly the interpreter's
        # behaviour (predicates run per candidate, zero candidates).
        path = "//patient[1 = 2][frobnicate()]"
        assert engine.evaluate(doc, path) == []
        assert engine.compile_evaluator(path).evaluate(doc) == []
        with pytest.raises(XPathEvaluationError, match="unknown function"):
            engine.compile_evaluator("//patient[frobnicate()]").evaluate(doc)


class TestEngineCache:
    def test_cache_returns_same_object(self, engine):
        assert engine.compile_evaluator("//a") is engine.compile_evaluator("//a")

    def test_cache_is_per_engine(self, engine, paper_engine):
        assert engine.compile_evaluator("//a") is not paper_engine.compile_evaluator(
            "//a"
        )

    def test_cache_evicts_lru(self, engine):
        from repro.xpath import engine as engine_mod

        first = engine.compile_evaluator("//a0")
        for i in range(1, engine_mod._COMPILED_CACHE_SIZE + 1):
            engine.compile_evaluator(f"//a{i}")
        assert engine.compile_evaluator("//a0") is not first


class TestDifferentialMode:
    def test_workload_passes_under_differential(self, differential, engine, doc):
        for path in list(PATHS):
            engine.compile_evaluator(path).evaluate(doc)

    def test_divergence_raises(self, differential, engine, doc):
        compiled = engine.compile_evaluator("//patient[1]/name")
        compiled.evaluate(doc)  # agreeing run: no error
        # Sabotage the compiled closure; the interpreter now disagrees
        # and the differential check must catch it.
        broken = CompiledXPath(
            compiled.path,
            compiled.expr,
            lambda ctx: [],
            engine._context,
        )
        with pytest.raises(XPathDifferentialError, match="diverged"):
            broken.evaluate(doc)

    def test_differential_compares_zero_signs(self, differential, engine, doc):
        compiled = engine.compile_evaluator("1 div (-0.0)")
        assert compiled.evaluate(doc) == -math.inf

    def test_toggle_is_restored(self, engine, doc):
        # The fixture restored the flag; a broken closure passes silently.
        assert not differential_enabled()
        broken = CompiledXPath("//x", engine.compile("//x"), lambda ctx: [], None)
        assert broken(engine._context(doc, None, None)) == []


@pytest.mark.fault
def test_differential_covers_secure_write_paths(differential):
    """Every rule evaluation and write selection re-checks compiled
    against interpreted while the fault lane runs with the env flag."""
    from repro.core import hospital_database
    from repro.xupdate.operations import Append
    from repro.xmltree import element

    db = hospital_database()
    session = db.login("laporte")  # a doctor: insert on //diagnosis
    session.read_xml()
    result = session.execute(
        Append(path="//diagnosis", tree=element("item"))
    )
    assert result.fully_applied


def test_fused_descendant_scan_matches_generic(engine):
    # Fusion only fires for predicate-free child steps after //; compare
    # against a document whose shape exercises deep nesting.
    doc = medical_document()
    for path in ("//*", "//text()", "//node()"):
        assert engine.compile_evaluator(path).select(doc) == engine.select(doc, path)
    # Descendant scan from a non-root context set.
    inner = engine.select(doc, "/*/*")[0]
    assert engine.compile_evaluator(".//*").evaluate(
        doc, context_node=inner
    ) == engine.evaluate(doc, ".//*", context_node=inner)
