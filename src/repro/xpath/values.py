"""XPath 1.0 value types and conversions.

XPath has four types: node-set, boolean, number (IEEE double) and
string.  A node-set is represented as a Python list of
:class:`~repro.xmltree.labels.NodeId` in document order without
duplicates.  This module implements the object-to-type conversions of
spec sections 3.2 (functions ``boolean``/``number``/``string``) exactly,
including the slightly odd number-to-string formatting rules.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Union

from ..xmltree.document import XMLDocument
from ..xmltree.labels import NodeId, document_order_key

__all__ = [
    "XPathValue",
    "NodeSet",
    "is_node_set",
    "to_boolean",
    "to_number",
    "to_string",
    "number_to_string",
    "sort_document_order",
]

NodeSet = List[NodeId]
XPathValue = Union[NodeSet, bool, float, str]


def is_node_set(value: XPathValue) -> bool:
    """True if the value is a node-set (a list of node ids)."""
    return isinstance(value, list)


def sort_document_order(nodes: Sequence[NodeId]) -> NodeSet:
    """Deduplicate and sort ids into document order."""
    return sorted(set(nodes), key=document_order_key)


def to_boolean(value: XPathValue) -> bool:
    """The ``boolean()`` conversion (spec 4.3)."""
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return bool(value) and not math.isnan(value)
    return bool(value)


def to_number(value: XPathValue, doc: XMLDocument) -> float:
    """The ``number()`` conversion (spec 4.4); NaN on failure."""
    if isinstance(value, list):
        return to_number(to_string(value, doc), doc)
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    text = value.strip()
    try:
        return float(text)
    except ValueError:
        return math.nan


def number_to_string(value: float) -> str:
    """Format a number the way XPath's ``string()`` does (spec 4.2).

    Integers print without a decimal point; NaN and infinities use the
    XPath spellings.
    """
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def to_string(value: XPathValue, doc: XMLDocument) -> str:
    """The ``string()`` conversion (spec 4.2).

    A node-set converts to the string-value of its first node in
    document order (empty string for the empty set).
    """
    if isinstance(value, list):
        if not value:
            return ""
        first = min(value, key=document_order_key)
        return doc.string_value(first)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return number_to_string(value)
    return value
