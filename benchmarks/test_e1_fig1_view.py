"""E1 (figure 1): derive the RESTRICTED view of the figure-1 document.

Regenerates: the right-hand tree of figure 1 (position privilege on the
patient name, read on everything else) and times the derivation.
"""

from repro.security import Policy, SubjectHierarchy, ViewBuilder
from repro.xmltree import parse_xml, render_tree

EXPECTED = [
    "/",
    "  /patients",
    "    /RESTRICTED",
    "      /diagnosis",
    "        text()pneumonia",
]


def build_fig1():
    doc = parse_xml(
        "<patients><robert><diagnosis>pneumonia</diagnosis></robert></patients>"
    )
    subjects = SubjectHierarchy()
    subjects.add_user("s")
    policy = Policy(subjects)
    policy.grant("read", "//*", "s")
    policy.deny("read", "/patients/robert", "s")
    policy.grant("position", "/patients/robert", "s")
    return doc, policy


def test_e1_figure1_view(benchmark):
    doc, policy = build_fig1()
    builder = ViewBuilder()

    def derive():
        view = builder.build(doc, policy, "s")
        assert render_tree(view.doc).split("\n") == EXPECTED
        return view

    view = benchmark(derive)
    assert len(view.restricted) == 1
