"""WAL-shipping replication: primary/replica serving over one log.

The write-ahead log (:mod:`repro.wal`) is a complete, replayable
stream of committed XUpdate scripts, and the paper makes ``dbnew`` a
deterministic function of ``db`` and the script (formulae (2)-(9)) --
so *shipping the log* ships the database, enforcement included: a
replica replaying the stream through the real secured update path
re-derives the same document, the same policy, and the same authorized
view for every user.

Three pieces:

- :class:`Replica` follows a primary's log directory with a
  :class:`~repro.wal.WalStream`, seeds itself through the recovery
  path (newest checkpoint + committed suffix), applies each streamed
  record through :func:`repro.wal.apply_record`, and serves read-only
  sessions from its own shared view cache.  Failure is first-class:
  a pruned-away stream position falls back to checkpoint catch-up, a
  stamped-version or checkpoint-digest mismatch quarantines the
  replica (diverged state is *never* served), and the replication
  kill-points (``stream-truncated``, ``replica-before-apply``,
  ``replica-mid-replay``) let the chaos lane kill all of it mid-step.
- :class:`ReplicationRouter` routes writes to the primary
  :class:`~repro.serving.DatabaseServer` and reads to any replica
  fresh enough for the caller -- read-your-writes over the stamped
  versions every commit already carries, waiting out replica lag
  under the serving layer's deadline machinery and falling through
  to the primary when no replica catches up in time.
- The ``make replication`` lane: 200+ seeded chaos schedules killing
  replicas mid-replay and mid-catch-up, asserting every survivor
  converges to the primary's exact version and byte-identical
  serialized state (tests/replication/).

See DESIGN.md section 12 for the protocol, the consistency guarantees
and the failure matrix.
"""

from .replica import Replica
from .router import ReplicationRouter, RouteDecision

__all__ = ["Replica", "ReplicationRouter", "RouteDecision"]
