"""Statistics over a RESTRICTED view: the epidemiologist's workload.

The paper motivates the *position* privilege with exactly this user:
"user s is permitted to read illnesses (most probably for statistical
purpose) but she is forbidden to see patients' names" (section 2.1).
This example scales the scenario up: a few hundred generated patient
records, an epidemiologist who runs aggregate XPath queries over her
view -- where every patient name reads RESTRICTED but services and
diagnoses are intact -- and a check that the counts she computes match
the administrator's ground truth even though she can identify nobody.

Run with::

    python examples/epidemiology_study.py
"""

import random

from repro import SecureXMLDatabase, element
from repro.core import PAPER_POLICY_RULES

SERVICES = ["cardiology", "pneumology", "oncology", "otolarynology"]
DIAGNOSES = {
    "cardiology": ["pericarditis", "arrhythmia", "angina"],
    "pneumology": ["pneumonia", "bronchitis", "asthma"],
    "oncology": ["lymphoma", "melanoma"],
    "otolarynology": ["tonsillitis", "sinusitis", "pharyngitis"],
}


def generate_database(patients: int, seed: int = 2005) -> SecureXMLDatabase:
    """A hospital database with ``patients`` random records."""
    rng = random.Random(seed)
    db = SecureXMLDatabase.from_xml("<patients/>")
    db.subjects.add_role("staff")
    db.subjects.add_role("secretary", member_of="staff")
    db.subjects.add_role("doctor", member_of="staff")
    db.subjects.add_role("epidemiologist", member_of="staff")
    db.subjects.add_role("patient")
    db.subjects.add_user("richard", member_of="epidemiologist")
    db.subjects.add_user("laporte", member_of="doctor")
    for effect, privilege, path, subject in PAPER_POLICY_RULES:
        if effect == "accept":
            db.policy.grant(privilege, path, subject)
        else:
            db.policy.deny(privilege, path, subject)

    from repro import Append

    root_append = []
    for index in range(patients):
        service = rng.choice(SERVICES)
        diagnosis = rng.choice(DIAGNOSES[service])
        record = element(
            f"patient{index:04d}",
            element("service", service),
            element("diagnosis", diagnosis),
        )
        root_append.append(record)
    for record in root_append:
        db.admin_update(Append("/patients", record))
    return db


def main() -> None:
    db = generate_database(patients=200)
    richard = db.login("richard")

    print("== A slice of the epidemiologist's view ==")
    slice_xml = richard.query("/patients/*[position() <= 2]")
    from repro import serialize

    for nid in slice_xml:
        print(serialize(richard.view().doc, nid=nid, indent="  "))
    print()

    # Aggregate queries on the view: names are gone, content is intact.
    print("== Diagnosis frequencies computed from the RESTRICTED view ==")
    print(f"{'service':16} {'patients':>8}")
    total = 0.0
    for service in SERVICES:
        count = richard.query(f"count(//service[text()='{service}'])")
        total += count
        print(f"{service:16} {int(count):8d}")
    print(f"{'TOTAL':16} {int(total):8d}\n")

    # Ground truth from the administrator's unrestricted document.
    admin_engine = db.engine
    for service in SERVICES:
        ground = admin_engine.evaluate(
            db.document, f"count(//service[text()='{service}'])"
        )
        view_count = richard.query(f"count(//service[text()='{service}'])")
        assert ground == view_count, (service, ground, view_count)
    print("Counts from the view match the administrator's ground truth.")

    # ...but identification is impossible: every patient element is
    # RESTRICTED in richard's view.
    names = richard.query("/patients/*[name() != 'RESTRICTED']")
    print(f"Patient elements with a visible name in richard's view: "
          f"{len(names)}")
    pneumonia_names = richard.query(
        "/patients/*[diagnosis/text()='pneumonia']"
    )
    print(f"...and trying to select *who* has pneumonia still only "
          f"yields RESTRICTED elements "
          f"({len(pneumonia_names)} matches, all anonymous).")


if __name__ == "__main__":
    main()
