"""Fault injection: named kill-points for crash-safety testing.

The transactional update path and the storage layer call
:func:`kill_point` at the places where a crash would be most damaging.
In production nothing is armed and the call is a dictionary-emptiness
check; under test, :func:`inject` arms a point so that reaching it
raises :class:`InjectedFault`, simulating a process death at exactly
that instant.  The crash-safety suites then assert the atomicity
invariant: a failed script leaves every session view byte-identical to
its pre-script view, and an interrupted save leaves the previous
on-disk file loadable.

Named kill-points:

=================  =====================================================
``before-op``      script execution, before operation *i* starts
``after-op``       script execution, after operation *i* applied but
                   before its result is folded into the script result
``mid-write``      storage, after roughly half the payload is written
                   to the temp file (a torn write)
``before-rename``  storage, after the temp file is durable but before
                   the atomic rename installs it
=================  =====================================================

Durability kill-points (ISSUE 5) -- the write-ahead log and checkpoint
paths in :mod:`repro.wal`:

===========================  ===========================================
``wal-before-append``        before any byte of a WAL record is written
                             (the commit is lost, the log is clean)
``wal-mid-record``           after roughly half the record's payload is
                             flushed (a genuinely torn tail on disk)
``wal-before-fsync``         the record is fully written but not yet
                             fsynced (durable-but-unacknowledged commit)
``checkpoint-mid-snapshot``  after roughly half a checkpoint snapshot is
                             written to its temp file
===========================  ===========================================

Replication kill-points (ISSUE 7) -- the WAL-shipping feed and the
replica apply loop in :mod:`repro.replication`:

===========================  ===========================================
``stream-truncated``         at the top of a :meth:`WalStream.poll` --
                             the feed is cut out from under a follower
``replica-before-apply``     a streamed record is decoded but not yet
                             applied to the replica's database
``replica-mid-replay``       the record applied, the replica's applied
                             lsn already advanced, but the poll loop is
                             killed before finishing its batch
===========================  ===========================================

Network/group-commit kill-points (ISSUE 8) -- the async front-end in
:mod:`repro.netserve` and the group committer in
:mod:`repro.serving.group`:

==============================  ========================================
``net-mid-frame``               after roughly half a response frame has
                                been written to the socket (the peer
                                sees a truncated frame, then EOF)
``group-after-leader-append``   the leader's own record is applied and
                                appended (unfsynced) but no follower
                                has run yet
``group-before-fsync``          every group member is appended, the
                                single group fsync has not happened --
                                nothing in the group may be acknowledged
==============================  ========================================

Failover kill-points (ISSUE 9) -- the supervised-promotion machinery
in :mod:`repro.replication.supervisor` and the deposed-primary ack
window in :mod:`repro.serving.group`:

==============================  ========================================
``supervisor-before-promote``   failure diagnosed, promotion decided,
                                but no candidate drained or touched yet
``promote-mid-drain``           the chosen replica is drained to the
                                reachable end of the log, but the
                                promotion (epoch bump, new WAL, router
                                swap) has not started -- a retry must
                                promote cleanly
``old-primary-late-ack``        a deposed primary's commit group is
                                fully appended and about to fsync+ack;
                                the fence check sits right behind it
==============================  ========================================

Example::

    from repro.testing.faults import inject, InjectedFault

    with inject("before-op", after=1):   # fail when op index 1 starts
        with pytest.raises(UpdateAborted):
            session.execute(script)

Concurrency chaos
-----------------

The second half of this module is the chaos harness (ISSUE 4): tools
for driving the serving layer through *randomized but reproducible*
concurrent schedules.

- :class:`ChaosRunner` interleaves cooperative tasks (generators that
  ``yield`` at their natural preemption points -- between begin,
  execute and commit) under a seeded scheduler, optionally arming a
  random kill-point before a step.  The same seed replays the same
  schedule decision-for-decision, so any failing soak iteration is a
  one-line reproduction.
- :func:`run_threads` stress-runs real OS threads behind a start
  barrier and *captures* everything they raise -- the caller asserts
  the exception list is empty (or contains only expected, governed
  failures), so nothing escapes a soak silently.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ReproError

__all__ = [
    "KILL_POINTS",
    "ChaosReport",
    "ChaosRunner",
    "FaultInjector",
    "InjectedFault",
    "faults",
    "inject",
    "kill_point",
    "run_threads",
]

#: Every kill-point the library consults, in execution order.
KILL_POINTS = (
    "before-op",
    "after-op",
    "mid-write",
    "before-rename",
    "wal-before-append",
    "wal-mid-record",
    "wal-before-fsync",
    "checkpoint-mid-snapshot",
    "stream-truncated",
    "replica-before-apply",
    "replica-mid-replay",
    "net-mid-frame",
    "group-after-leader-append",
    "group-before-fsync",
    "supervisor-before-promote",
    "promote-mid-drain",
    "old-primary-late-ack",
)


class InjectedFault(ReproError):
    """A simulated crash raised by an armed kill-point.

    Attributes:
        point: the kill-point name that fired.
        context: keyword context the call site passed to
            :func:`kill_point` (operation index, file path, ...).
    """

    def __init__(self, point: str, context: Dict[str, Any]) -> None:
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
        super().__init__(f"injected fault at kill-point {point!r}"
                         + (f" ({detail})" if detail else ""))
        self.point = point
        self.context = dict(context)


@dataclass
class _Armed:
    """One armed kill-point: fail on the (``after`` + 1)-th reach."""

    remaining: int


@dataclass
class FaultInjector:
    """A registry of armed kill-points plus a reach history.

    Thread-safe; a module-level instance (:data:`faults`) is what the
    library consults, but independent injectors can be built for
    isolated tests.
    """

    _armed: Dict[str, _Armed] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    #: Every reach of every kill-point since the last :meth:`reset`,
    #: as ``(point, context)`` pairs -- lets tests assert coverage.
    history: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    #: When True, every reach is appended to :data:`history` even while
    #: nothing is armed (off by default: zero cost in production).
    trace: bool = False

    def arm(self, point: str, after: int = 0) -> None:
        """Make ``point`` raise on its next reach.

        Args:
            point: one of :data:`KILL_POINTS`.
            after: number of reaches to let through first (so a script
                of N operations can be killed at any operation index).
        """
        self._check(point)
        if after < 0:
            raise ValueError("after must be >= 0")
        with self._lock:
            self._armed[point] = _Armed(remaining=after)

    def disarm(self, point: str | None = None) -> None:
        """Disarm one kill-point, or all of them when ``point`` is None."""
        with self._lock:
            if point is None:
                self._armed.clear()
            else:
                self._check(point)
                self._armed.pop(point, None)

    def is_armed(self, point: str) -> bool:
        """True if ``point`` is currently armed."""
        self._check(point)
        with self._lock:
            return point in self._armed

    def reset(self) -> None:
        """Disarm everything and clear the reach history."""
        with self._lock:
            self._armed.clear()
            self.history.clear()

    def reach(self, point: str, **context: Any) -> None:
        """Called by the library at a kill-point; raises when armed.

        Raises:
            InjectedFault: when ``point`` is armed and its countdown
                has expired.
        """
        if not self._armed and not self.trace:
            return  # hot path: nothing armed, nothing traced
        self._check(point)
        with self._lock:
            if self.trace:
                self.history.append((point, dict(context)))
            armed = self._armed.get(point)
            if armed is None:
                return
            if armed.remaining > 0:
                armed.remaining -= 1
                return
            del self._armed[point]  # one-shot: fire once, then disarm
        raise InjectedFault(point, context)

    @contextmanager
    def injected(self, point: str, after: int = 0) -> Iterator["FaultInjector"]:
        """Arm ``point`` for the duration of a ``with`` block."""
        self.arm(point, after=after)
        try:
            yield self
        finally:
            self.disarm(point)

    @staticmethod
    def _check(point: str) -> None:
        if point not in KILL_POINTS:
            raise ValueError(
                f"unknown kill-point {point!r}; known: {', '.join(KILL_POINTS)}"
            )


#: The injector the executor and storage layers consult.
faults = FaultInjector()


def kill_point(point: str, **context: Any) -> None:
    """Library-side hook: consult the default injector at ``point``."""
    faults.reach(point, **context)


def inject(point: str, after: int = 0):
    """Test-side sugar: arm the default injector inside a ``with`` block."""
    return faults.injected(point, after=after)


# ---------------------------------------------------------------------------
# concurrency chaos harness
# ---------------------------------------------------------------------------
@dataclass
class ChaosReport:
    """What one :meth:`ChaosRunner.run` did, decision for decision.

    Attributes:
        seed: the scheduler seed; re-running with it replays this
            exact report.
        schedule: every scheduling decision as ``(task_index,
            step_index)`` pairs, in execution order.
        results: per task, the generator's return value (None when it
            returned nothing or died on an exception).
        errors: per task, the exception that ended it early, or None.
        faults_armed: every randomly armed kill-point as
            ``(schedule_position, point_name)`` pairs.
        disk_faults_armed: every randomly armed disk fault as
            ``(schedule_position, (op, error))`` pairs (ISSUE 10).
    """

    seed: int
    schedule: List[Tuple[int, int]] = field(default_factory=list)
    results: List[Any] = field(default_factory=list)
    errors: List[Optional[BaseException]] = field(default_factory=list)
    faults_armed: List[Tuple[int, str]] = field(default_factory=list)
    disk_faults_armed: List[Tuple[int, Tuple[str, str]]] = field(
        default_factory=list
    )

    @property
    def clean(self) -> bool:
        """True when no task died on an exception."""
        return all(error is None for error in self.errors)


class ChaosRunner:
    """A deterministic randomized scheduler for cooperative tasks.

    Tasks are generator functions: each ``yield`` is a preemption
    point, and whatever the generator ``return``s becomes its entry in
    :attr:`ChaosReport.results`.  At every step the runner picks the
    next runnable task with a seeded RNG, so concurrency bugs found at
    some seed replay exactly -- the schedule is a pure function of
    ``(seed, tasks)`` as long as each task's behaviour is itself
    deterministic.

    Optionally the runner arms a random kill-point before a step
    (``kill_rate``), simulating crashes *during* contended schedules;
    leftover arming is cleared after each step so one decision never
    leaks into the next.

    Args:
        seed: scheduler seed.
        kill_points: kill-point names eligible for random arming
            (subset of :data:`KILL_POINTS`).
        kill_rate: probability of arming one random kill-point before
            a step (0.0 disables).
        injector: the :class:`FaultInjector` to arm (the module-level
            :data:`faults` by default, which is what the library
            consults).
        disk_faults: disk-fault specs eligible for random arming, as
            ``(op, error)`` pairs -- e.g. ``("write", "enospc")`` or
            ``("fsync", "eio")`` (see
            :mod:`repro.testing.diskfaults`).
        disk_rate: probability of arming one random disk fault before
            a step (0.0 disables).  Disk faults and kill-points are
            drawn independently, so a schedule can combine a crash
            with a sick disk.
        disk_injector: the :class:`~repro.testing.diskfaults.
            DiskFaultInjector` to arm (the module-level ``disk`` by
            default, which is what the storage/WAL layers consult).

    Example::

        def writer():
            txn = db.transaction()
            yield                       # others may commit here
            result = executor.apply(db.build_view(user), script)
            yield
            txn.commit(result.document, result.changes)
            return "committed"

        report = ChaosRunner(seed=7).run([writer, writer])
        assert report.clean
    """

    def __init__(
        self,
        seed: int = 0,
        kill_points: Sequence[str] = (),
        kill_rate: float = 0.0,
        injector: Optional[FaultInjector] = None,
        disk_faults: Sequence[Tuple[str, str]] = (),
        disk_rate: float = 0.0,
        disk_injector: Optional[Any] = None,
    ) -> None:
        for point in kill_points:
            FaultInjector._check(point)
        if not 0.0 <= kill_rate <= 1.0:
            raise ValueError("kill_rate must be in [0, 1]")
        if kill_rate > 0.0 and not kill_points:
            raise ValueError("kill_rate > 0 needs at least one kill point")
        if not 0.0 <= disk_rate <= 1.0:
            raise ValueError("disk_rate must be in [0, 1]")
        if disk_rate > 0.0 and not disk_faults:
            raise ValueError("disk_rate > 0 needs at least one disk fault spec")
        from .diskfaults import DISK_ERRORS, DISK_OPS, disk as default_disk

        for op, error in disk_faults:
            if op not in DISK_OPS or error not in DISK_ERRORS:
                raise ValueError(f"unknown disk fault spec ({op!r}, {error!r})")
        self.seed = seed
        self.kill_points = tuple(kill_points)
        self.kill_rate = kill_rate
        self._injector = injector if injector is not None else faults
        self.disk_faults = tuple((op, error) for op, error in disk_faults)
        self.disk_rate = disk_rate
        self._disk = disk_injector if disk_injector is not None else default_disk

    def run(self, tasks: Sequence[Callable[[], Iterator[Any]]]) -> ChaosReport:
        """Interleave ``tasks`` to completion and report the schedule.

        A task that raises is recorded in :attr:`ChaosReport.errors`
        and removed from the runnable set; the exception never
        propagates out of the harness (soaks assert on the report
        instead).
        """
        rng = random.Random(self.seed)
        gens = [task() for task in tasks]
        report = ChaosReport(
            seed=self.seed,
            results=[None] * len(gens),
            errors=[None] * len(gens),
        )
        steps = [0] * len(gens)
        runnable = list(range(len(gens)))
        position = 0
        while runnable:
            index = rng.choice(runnable)
            report.schedule.append((index, steps[index]))
            armed = None
            disk_armed = None
            if self.kill_rate > 0.0 and rng.random() < self.kill_rate:
                armed = rng.choice(self.kill_points)
                self._injector.arm(armed)
                report.faults_armed.append((position, armed))
            if self.disk_rate > 0.0 and rng.random() < self.disk_rate:
                disk_armed = rng.choice(self.disk_faults)
                self._disk.arm(disk_armed[0], disk_armed[1])
                report.disk_faults_armed.append((position, disk_armed))
            try:
                next(gens[index])
            except StopIteration as stop:
                report.results[index] = stop.value
                runnable.remove(index)
            except BaseException as exc:  # captured, never propagated
                report.errors[index] = exc
                runnable.remove(index)
            finally:
                if armed is not None:
                    # One-shot arming may not have been reached; never
                    # leak it into the next step (or the next test).
                    self._injector.disarm(armed)
                if disk_armed is not None:
                    self._disk.disarm(disk_armed[0])
            steps[index] += 1
            position += 1
        return report


def run_threads(
    worker: Callable[[int], Any],
    count: int,
    timeout: Optional[float] = 30.0,
) -> List[Optional[BaseException]]:
    """Run ``worker(i)`` on ``count`` real threads behind a start
    barrier; return each thread's exception (None when it finished).

    The barrier maximizes real interleaving (every thread hits the
    serving layer at once), and captured exceptions let soak tests
    assert exactly which governed failures -- and no others -- escaped.

    Args:
        worker: callable invoked with the thread index.
        timeout: per-thread join timeout; a thread still alive after
            it is reported as a :class:`TimeoutError` in its slot.
    """
    barrier = threading.Barrier(count)
    errors: List[Optional[BaseException]] = [None] * count

    def runner(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:
            errors[index] = exc

    threads = [
        threading.Thread(target=runner, args=(i,), daemon=True)
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for index, thread in enumerate(threads):
        thread.join(timeout)
        if thread.is_alive():
            errors[index] = TimeoutError(
                f"worker {index} still running after {timeout}s"
            )
    return errors
