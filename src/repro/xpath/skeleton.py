"""Static path/update interaction analysis (after Cheney 2013).

Given a compiled rule path, this module extracts a conservative
*skeleton* -- the set of labels the path can possibly select or traverse
-- and, for a structurally simple fragment, a chain *matcher* that
decides membership of a single node without evaluating the path over
the whole document.

The two artifacts power incremental permission maintenance
(:meth:`repro.security.perm.PermissionResolver.note_commit`):

- **Disjointness** (:meth:`PathSkeleton.may_intersect`): if the labels a
  commit touched are disjoint from the skeleton's label set, the path
  provably selects the same nodes before and after the commit, so its
  cached selection is carried forward untouched.
- **Local re-matching** (:meth:`PathSkeleton.matches`): for paths in the
  *patchable* fragment (absolute location paths over ``child``,
  ``descendant``, ``descendant-or-self`` and ``self`` steps with
  name or text/comment/node kind tests and no predicates), membership of
  a node depends only on its own label/kind chain up to the document
  node.  A cached selection can then be patched: drop entries inside
  removed regions, re-test nodes inside touched regions -- never a full
  re-evaluation.

Everything else (predicates, reverse axes, unions, functions,
variables) analyzes to ``None``: *opaque*, meaning the consumer must
conservatively re-evaluate the path after any commit.

The matcher replicates the evaluator's paper-compat semantics exactly
(``star_matches_text``: a lone ``*`` also matches text and comment
nodes); the differential property suite in
``tests/security/test_view_maintenance_properties.py`` pins the
equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set, Tuple

from ..xmltree.document import XMLDocument
from ..xmltree.labels import NodeId
from ..xmltree.node import NodeKind
from .ast import Expr, KindTest, LocationPath, NameTest, Step, UnionExpr
from .parser import parse_xpath

__all__ = ["PathSkeleton", "analyze_path", "analyze_expr"]

#: Token kinds of the patchable fragment's chain automaton.
_ANY = "any"  # descendant-or-self::node(): descend zero or more levels
_CHILD = "child"  # child::test: consume exactly one chain node
_SELF = "self"  # self::test: zero-width test on the current node

#: Axes the patchable matcher understands (others force re-evaluation).
_PATCHABLE_AXES = frozenset({"child", "descendant", "descendant-or-self", "self"})


@dataclass(frozen=True)
class PathSkeleton:
    """The static summary of one rule path.

    Attributes:
        labels: concrete labels the path mentions, or None when a
            wildcard / kind test makes the label set unbounded.
        patchable: True when :meth:`matches` can decide membership.
        tokens: the chain automaton of the patchable fragment
            (empty and meaningless when not patchable).
    """

    labels: Optional[FrozenSet[str]]
    patchable: bool
    tokens: Tuple[Tuple[str, object], ...] = ()

    def may_intersect(self, touched_labels: Set[str]) -> bool:
        """Could a commit touching these labels change the selection?

        False is a *proof* of stability; True is merely "cannot rule it
        out" (wildcards, kind tests and label overlap all answer True).
        """
        if self.labels is None:
            return True
        return not self.labels.isdisjoint(touched_labels)

    # ------------------------------------------------------------------
    # chain matching (patchable fragment only)
    # ------------------------------------------------------------------
    def matches(
        self, doc: XMLDocument, nid: NodeId, star_matches_text: bool = False
    ) -> bool:
        """Does the path select ``nid`` when evaluated from the document
        node of ``doc``?  Only meaningful when :attr:`patchable`.

        Runs an NFA over the node's label/kind chain (document node
        excluded), so the cost is O(depth x tokens) -- independent of
        document size.
        """
        if not self.patchable:
            raise ValueError("matches() called on a non-patchable skeleton")
        chain = list(nid.ancestors())[:-1]  # nearest-first, document dropped
        chain.reverse()
        chain.append(nid)
        if nid.is_document:
            chain = []
        tokens = self.tokens
        n = len(tokens)
        # State i = "tokens[:i] consumed"; expand zero-width tokens.
        states = self._closure({0}, None, doc, star_matches_text)
        for node in chain:
            nxt: Set[int] = set()
            for i in states:
                if i >= n:
                    continue
                kind, test = tokens[i]
                if kind == _ANY:
                    nxt.add(i)  # descend one more level, stay in the gap
                elif kind == _CHILD and _test_matches(
                    doc, node, test, star_matches_text
                ):
                    nxt.add(i + 1)
            states = self._closure(nxt, node, doc, star_matches_text)
            if not states:
                return False
        return n in states

    def _closure(
        self,
        states: Set[int],
        context: Optional[NodeId],
        doc: XMLDocument,
        star_matches_text: bool,
    ) -> Set[int]:
        """Expand zero-width transitions: _ANY matches zero levels;
        _SELF tests the current chain node without consuming it."""
        tokens = self.tokens
        n = len(tokens)
        out = set(states)
        frontier = list(states)
        while frontier:
            i = frontier.pop()
            if i >= n:
                continue
            kind, test = tokens[i]
            advance = False
            if kind == _ANY:
                advance = True
            elif kind == _SELF:
                if context is None:
                    # self:: at the document node: only node() matches.
                    advance = isinstance(test, KindTest) and test.kind == "node"
                else:
                    advance = _test_matches(doc, context, test, star_matches_text)
            if advance and i + 1 not in out:
                out.add(i + 1)
                frontier.append(i + 1)
        return out


def _test_matches(
    doc: XMLDocument, nid: NodeId, test, star_matches_text: bool
) -> bool:
    """Replicates the evaluator's ``_matches_test`` for the child axis
    (principal node type: element)."""
    node = doc.node(nid)
    if isinstance(test, KindTest):
        if test.kind == "node":
            return True
        if test.kind == "text":
            return node.kind is NodeKind.TEXT
        if test.kind == "comment":
            return node.kind is NodeKind.COMMENT
        return False  # processing-instruction: excluded from the fragment
    assert isinstance(test, NameTest)
    if node.kind is NodeKind.ELEMENT:
        return test.is_wildcard or node.label == test.name
    if (
        star_matches_text
        and test.is_wildcard
        and node.kind in (NodeKind.TEXT, NodeKind.COMMENT)
    ):
        return True
    return False


def _analyze_test(test) -> Optional[Optional[FrozenSet[str]]]:
    """Label contribution of one node test, or ``None`` (wrapped) when
    the test is outside the fragment.  Returns:

    - ``frozenset({name})`` for a concrete name test;
    - ``None`` (inner) for wildcard / kind tests (unbounded labels);
    - raises ValueError for tests the fragment excludes.
    """
    if isinstance(test, NameTest):
        if test.is_wildcard:
            return None
        return frozenset({test.name})
    if isinstance(test, KindTest):
        if test.kind in ("node", "text", "comment"):
            return None
        raise ValueError("processing-instruction test outside the fragment")
    raise ValueError(f"unknown node test {test!r}")


def _analyze_steps(steps: Tuple[Step, ...]):
    """Skeleton pieces of a step sequence.

    Returns ``(labels_or_None, patchable, tokens)``.

    Raises:
        ValueError: when any step makes even the label skeleton
            unsound (predicate referencing other regions is fine for
            labels -- predicates only *narrow* label sets -- but a
            predicate can make a path's result change without the
            selected labels changing, so predicated paths keep their
            labels for intersection tests yet lose patchability).
    """
    labels: Set[str] = set()
    unbounded = False
    chain_only = all(step.axis in _PATCHABLE_AXES for step in steps)
    patchable = chain_only
    concrete: list = []  # per-step: is the test a concrete name test?
    tokens = []
    for step in steps:
        if step.predicates:
            # A predicate may inspect arbitrary neighbouring structure
            # (e.g. //a[b] or positional tests): the selection can
            # change when *any* label changes, so the label skeleton
            # must widen to "unbounded".
            unbounded = True
            patchable = False
        try:
            contribution = _analyze_test(step.test)
        except ValueError:
            return None
        concrete.append(contribution is not None)
        if contribution is not None:
            labels |= contribution
        if patchable:
            test = step.test
            if step.axis == "child":
                tokens.append((_CHILD, test))
            elif step.axis == "descendant":
                tokens.append((_ANY, None))
                tokens.append((_CHILD, test))
            elif step.axis == "descendant-or-self":
                if isinstance(test, KindTest) and test.kind == "node":
                    tokens.append((_ANY, None))
                else:
                    # descend zero or more levels, then test in place:
                    # the self branch of descendant-or-self is exactly
                    # a zero-width test on the current chain node.
                    tokens.append((_ANY, None))
                    tokens.append((_SELF, test))
            elif step.axis == "self":
                tokens.append((_SELF, test))
    if concrete and chain_only:
        # Ancestor-chain axes only: every node a test matches during a
        # derivation is an ancestor-or-self of the selected node, and
        # inserts never graft ancestors above existing nodes.  Membership
        # can therefore change only when (a) a node whose label matches
        # the *final* test enters or leaves the document, or (b) a node
        # is relabelled across some concrete test -- both put a skeleton
        # label in the commit's touched set.  Intermediate wildcard/kind
        # tests are label-insensitive and need no widening; an
        # unconstrained final test means any node can enter, though.
        if not concrete[-1]:
            unbounded = True
    else:
        # Sibling/reverse axes can select nodes *outside* the subtree of
        # the step's match (e.g. //node()/following-sibling::c gains a
        # selection when any new left sibling appears), so any
        # non-concrete test anywhere makes the label set unbounded.
        if not all(concrete):
            unbounded = True
    return (None if unbounded else frozenset(labels)), patchable, tuple(tokens)


def analyze_expr(expr: Expr) -> Optional[PathSkeleton]:
    """The skeleton of a compiled expression, or None when opaque.

    Opaque means: no sound label skeleton can be extracted, so any
    commit may change the selection (filter expressions, variables,
    function calls at the top level, reverse axes inside predicates of
    absolute paths are all opaque).
    """
    if isinstance(expr, UnionExpr):
        left = analyze_expr(expr.left)
        right = analyze_expr(expr.right)
        if left is None or right is None:
            return None
        labels: Optional[FrozenSet[str]]
        if left.labels is None or right.labels is None:
            labels = None
        else:
            labels = left.labels | right.labels
        # Union patching would need per-branch bookkeeping; keep the
        # label skeleton (it still proves stability) but re-evaluate
        # unions whose selection may have changed.
        return PathSkeleton(labels=labels, patchable=False)
    if isinstance(expr, LocationPath):
        pieces = _analyze_steps(expr.steps)
        if pieces is None:
            return None
        labels, patchable, tokens = pieces
        # Relative paths are only sound when evaluated from the document
        # node, which is exactly how the permission resolver uses them.
        return PathSkeleton(labels=labels, patchable=patchable, tokens=tokens)
    return None


def analyze_path(path: str) -> Optional[PathSkeleton]:
    """Parse and analyze a path string (None for opaque / unparsable)."""
    try:
        expr = parse_xpath(path)
    except ValueError:
        return None
    return analyze_expr(expr)
