"""E10 (section 2.2): the covert channel, open vs closed.

Regenerates: the leak under source-evaluated writes (the SQL / [10]
semantics) and its absence under view-evaluated writes, timing both
write paths.  The headline row is the pair of selection counts:
insecure probe selects 1 node (the leak), secure probe selects 0.
"""

from repro.security import InsecureWriteExecutor, SecureWriteExecutor
from repro.xupdate import Rename

PROBE = Rename("/patients/*[diagnosis/text()='pneumonia']", "flagged")


def test_e10_insecure_probe_leaks(benchmark, paper_db):
    view = paper_db.build_view("beaufort")
    executor = InsecureWriteExecutor()

    def run():
        return executor.apply(view, PROBE)

    result = benchmark(run)
    assert len(result.selected) == 1  # "1 row updated" -- the leak
    assert len(result.affected) == 1


def test_e10_secure_probe_blind(benchmark, paper_db):
    view = paper_db.build_view("beaufort")
    executor = SecureWriteExecutor()

    def run():
        return executor.apply(view, PROBE)

    result = benchmark(run)
    assert result.selected == []  # channel closed
    assert result.affected == []


def test_e10_binary_search_attack_cost(benchmark, paper_db):
    """The full attack: probe every candidate illness insecurely.

    Times the attacker's whole dictionary sweep -- the cost of the
    attack the secure semantics makes impossible.
    """
    view = paper_db.build_view("beaufort")
    executor = InsecureWriteExecutor()
    candidates = ["influenza", "tonsillitis", "pneumonia", "angina", "asthma"]

    def run():
        hits = []
        for illness in candidates:
            probe = Rename(
                f"/patients/robert[diagnosis/text()='{illness}']", "robert"
            )
            if executor.apply(view, probe).selected:
                hits.append(illness)
        return hits

    hits = benchmark(run)
    assert hits == ["pneumonia"]
