"""Structured error taxonomy for the whole library.

Every failure the library can signal descends from :class:`ReproError`,
so callers can catch one base class instead of an ad-hoc mix of
``ValueError`` / ``PermissionError`` / bare ``Exception`` subclasses.
Domain modules keep defining their own error types (``PolicyError``,
``SubjectError``, ``XUpdateError``, ``AccessDenied``, ...) but parent
them here; the storage errors live here outright because both
:mod:`repro.storage` and :mod:`repro.cli` need them without importing
each other.

The taxonomy::

    ReproError
    ├── UpdateAborted          (a script rolled back mid-way)
    ├── ConcurrentUpdateError  (optimistic-concurrency commit conflict)
    ├── StorageError           (malformed/unsupported database file)
    │   └── StorageCorrupt     (file damaged beyond strict loading)
    ├── DiskError              (a raw OS disk failure, classified)
    │   ├── DiskFullError      (ENOSPC/EDQUOT: the volume is out of space)
    │   └── DiskIOError        (EIO and friends: the device failed the op)
    ├── ServingError           (repro.serving: a governed request failed)
    │   ├── OverloadError      (admission control shed the request)
    │   ├── DeadlineExceeded   (per-request deadline expired)
    │   ├── CircuitOpenError   (circuit breaker refusing writes)
    │   └── RetryExhausted     (backoff retries used up on commit races)
    ├── WalError               (repro.wal: durability subsystem failures)
    │   ├── WalWriteError      (an append/fsync failed; the log may be torn)
    │   ├── WalCorruptionError (a segment holds a corrupt/torn record)
    │   ├── RecoveryError      (replay could not restore the logged state)
    │   └── WalStreamGap       (a follower's position was pruned away)
    ├── ReplicationError       (repro.replication: primary/replica serving)
    │   ├── ReplicaDiverged    (replica state-hash != primary checkpoint)
    │   ├── ReadOnlyReplica    (a write reached a replica's database)
    │   ├── StaleEpochError    (a fenced/deposed primary tried to write)
    │   ├── FailoverError      (supervised promotion could not complete)
    │   └── RepairError        (anti-entropy repair from a peer failed)
    ├── NetworkError           (repro.netserve: the wire protocol)
    │   ├── ProtocolError      (malformed frame, bad handshake, oversized)
    │   │   └── FrameTooLarge  (frame exceeds the negotiated maximum)
    │   └── RemoteError        (a server-side failure relayed to a client)
    ├── InjectedFault          (repro.testing.faults: simulated crash)
    ├── PolicyError            (repro.security.policy)
    ├── SubjectError           (repro.security.subjects)
    ├── XUpdateError           (repro.xupdate.executor)
    └── AccessDenied           (repro.security.write)

Pre-existing exception lineages are preserved for compatibility:
``StorageError`` and ``PolicyError`` remain ``ValueError`` subclasses,
``AccessDenied`` remains a ``PermissionError``.

The ``ServingError`` branch is raised only by the serving layer
(:mod:`repro.serving`): the one-shot library API never sheds, times
out, or retries by itself.  All four carry enough context to decide
whether to re-submit (``RetryExhausted.last_error``,
``CircuitOpenError.retry_after``, ...).
"""

from __future__ import annotations

import errno

from typing import Any, Optional

__all__ = [
    "ReproError",
    "UpdateAborted",
    "ConcurrentUpdateError",
    "StorageError",
    "StorageCorrupt",
    "DiskError",
    "DiskFullError",
    "DiskIOError",
    "classify_disk_error",
    "WalError",
    "WalWriteError",
    "WalCorruptionError",
    "RecoveryError",
    "WalStreamGap",
    "ReplicationError",
    "ReplicaDiverged",
    "ReadOnlyReplica",
    "StaleEpochError",
    "FailoverError",
    "RepairError",
    "NetworkError",
    "ProtocolError",
    "FrameTooLarge",
    "RemoteError",
    "ServingError",
    "OverloadError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "RetryExhausted",
]


class ReproError(Exception):
    """Root of the library's error taxonomy."""


class UpdateAborted(ReproError):
    """A multi-operation update script failed and was rolled back.

    The theory-replacement semantics (formulae (2)-(9), axioms 18-25) is
    all-or-nothing: when any operation of a script fails, no part of the
    script reaches the database.  This error reports *which* operation
    failed and carries the last consistent intermediate document (the
    savepoint after the preceding operation) for diagnosis -- the
    savepoint is never installed anywhere.

    Attributes:
        operation_index: zero-based index of the failing operation.
        operation: the failing operation's class name (``"Rename"``...).
        completed: number of operations that had fully applied before
            the failure; all of them were rolled back.
        savepoint: the intermediate document after ``completed``
            operations, or None when unavailable.
    """

    def __init__(
        self,
        message: str,
        *,
        operation_index: Optional[int] = None,
        operation: Optional[str] = None,
        completed: int = 0,
        savepoint: Any = None,
    ) -> None:
        super().__init__(message)
        self.operation_index = operation_index
        self.operation = operation
        self.completed = completed
        self.savepoint = savepoint


class ConcurrentUpdateError(ReproError):
    """A transaction tried to commit over a concurrent commit.

    Raised by :class:`repro.security.database.Transaction` when the
    database version moved between ``begin`` and ``commit`` -- the
    optimistic-concurrency guard that keeps two interleaved scripts from
    silently clobbering each other.
    """


class ServingError(ReproError):
    """Root of the serving-layer failures (admission, deadlines, retry).

    Raised only by :mod:`repro.serving`; the underlying one-shot
    library API never signals these by itself.
    """


class OverloadError(ServingError):
    """Admission control refused the request: the in-flight budget is
    exhausted and the overload policy is ``"shed"``.

    Shedding is deliberate back-pressure, not a failure of the
    database: the request was never started, so it is always safe to
    re-submit later.

    Attributes:
        limit: the configured in-flight budget.
        in_flight: requests running when this one was shed.
    """

    def __init__(self, message: str, *, limit: int = 0, in_flight: int = 0) -> None:
        super().__init__(message)
        self.limit = limit
        self.in_flight = in_flight


class DeadlineExceeded(ServingError):
    """A per-request deadline expired before the request completed.

    May fire while queued for admission, while waiting for the
    reader-writer lock, between backoff retries, or *mid-script* --
    the deadline checkpoint runs before every script operation, so an
    expired write aborts through the executor's savepoint path with
    nothing committed.

    Attributes:
        budget: the deadline's total budget in seconds, when known.
    """

    def __init__(self, message: str, *, budget: Optional[float] = None) -> None:
        super().__init__(message)
        self.budget = budget


class CircuitOpenError(ServingError):
    """The write circuit breaker is open: recent writes failed
    repeatedly, so new writes are refused without touching the
    database until the reset timer half-opens the circuit.

    Attributes:
        failures: consecutive failures that tripped the breaker.
        retry_after: seconds until the breaker half-opens (0 when it
            is already probing).
    """

    def __init__(
        self, message: str, *, failures: int = 0, retry_after: float = 0.0
    ) -> None:
        super().__init__(message)
        self.failures = failures
        self.retry_after = retry_after


class RetryExhausted(ServingError):
    """Every backoff retry of a write hit a commit race
    (:class:`ConcurrentUpdateError`); the request gives up rather than
    spin forever.

    Attributes:
        attempts: how many times the write was attempted.
        last_error: the final :class:`ConcurrentUpdateError`.
    """

    def __init__(
        self,
        message: str,
        *,
        attempts: int = 0,
        last_error: Optional[BaseException] = None,
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class WalError(ReproError):
    """Root of the write-ahead-log durability failures
    (:mod:`repro.wal`)."""


class WalWriteError(WalError):
    """An append (or its fsync) failed; the tail of the log may be torn.

    After this error the in-memory writer refuses further appends (the
    on-disk offset is no longer trustworthy); re-open the log -- which
    truncates any torn tail -- or degrade to snapshot-only durability,
    as :class:`repro.serving.DatabaseServer` does.

    Attributes:
        disk: the classified :class:`DiskError` when the failure was a
            raw OS disk error (``ENOSPC``, ``EIO``, ...), else None.
            A :class:`DiskFullError` here is recoverable without
            degrading the writer: reclaim space (checkpoint + retention
            prune) and reopen the log.
    """

    def __init__(self, message: str, *, disk: Optional["DiskError"] = None) -> None:
        super().__init__(message)
        self.disk = disk


class WalCorruptionError(WalError):
    """A log segment holds a record that fails its length or CRC check.

    Raised only by *strict* scans and recovery; the default lenient
    recovery truncates the log at the first corrupt record (the
    torn-tail rule) and reports it instead of raising.
    """


class RecoveryError(WalError):
    """Crash recovery could not restore the logged state.

    Raised when no loadable checkpoint snapshot exists, or when
    replaying a committed record does not reproduce the version the
    record was stamped with (the recovery invariant).
    """


class WalStreamGap(WalError):
    """A log follower's position is no longer on disk.

    Raised by :class:`repro.wal.WalStream` when the segment holding the
    next record to deliver has been pruned away (checkpoint retention
    outran the follower) or rewritten past recognition.  The follower
    cannot make incremental progress; it must re-seed from the newest
    checkpoint -- :meth:`repro.replication.Replica.catch_up` is exactly
    that protocol.

    Attributes:
        next_lsn: the lsn the follower needed next.
        oldest_available: the oldest lsn still readable from the
            directory (0 when the directory holds no records at all).
    """

    def __init__(
        self, message: str, *, next_lsn: int = 0, oldest_available: int = 0
    ) -> None:
        super().__init__(message)
        self.next_lsn = next_lsn
        self.oldest_available = oldest_available


class ReplicationError(ReproError):
    """Root of the primary/replica serving failures
    (:mod:`repro.replication`)."""


class ReplicaDiverged(ReplicationError):
    """A replica's replayed state does not match the primary's.

    Detected when a streamed checkpoint record's snapshot digest (or
    stamped version) disagrees with the replica's own state hash at the
    same point in the log.  A diverged replica is *quarantined*: every
    read it is asked to serve raises this error until
    :meth:`repro.replication.Replica.catch_up` re-seeds it from a
    primary checkpoint.

    Attributes:
        expected: the primary-side digest or version description.
        actual: what the replica computed instead.
    """

    def __init__(
        self, message: str, *, expected: str = "", actual: str = ""
    ) -> None:
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class ReadOnlyReplica(ReplicationError):
    """A write reached a database serving as a read-only replica.

    Replicas mutate only through the replication apply path; any other
    commit would silently fork the replica from the primary's history.
    Route writes through the primary (see
    :class:`repro.replication.ReplicationRouter`).
    """


class StaleEpochError(ReplicationError):
    """A write carried (or would be stamped with) a fencing epoch older
    than the highest epoch the rejecting side has observed.

    Fencing epochs make failover split-brain-safe: every promotion bumps
    a monotonically increasing epoch stamped into WAL records and
    checkpoint metadata.  A deposed primary that keeps serving writes is
    *fenced* -- the router refuses to route to it, its own
    :class:`~repro.serving.DatabaseServer` refuses to acknowledge, and
    replicas quarantine rather than apply its stale records.  A write
    refused with this error was **never acknowledged** and never reached
    the authoritative log; re-submit it to the current primary.

    Attributes:
        epoch: the stale epoch the write carried.
        current: the highest epoch the rejecting side has observed.
    """

    def __init__(
        self, message: str, *, epoch: int = 0, current: int = 0
    ) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.current = current


class FailoverError(ReplicationError):
    """Supervised failover could not promote a new primary.

    Raised by :class:`repro.replication.FailoverSupervisor` when no
    non-quarantined replica exists to promote, or every candidate fails
    to drain to the reachable end of the log.  The cluster is left
    read-degraded but consistent: nothing was promoted, no epoch was
    burned, and the supervisor may retry once a replica recovers.

    Attributes:
        reason: a short machine-readable cause (``"no-candidates"``,
            ``"drain-failed"``, ...).
    """

    def __init__(self, message: str, *, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class RepairError(ReplicationError):
    """Anti-entropy repair from a peer could not complete.

    Raised by :func:`repro.replication.repair_from_peer` when the peer
    itself is damaged (a scrub of the peer's directory found non-benign
    corruption), when the staged copy fails to recover to the peer's
    exact state, or when the install step hits a disk error.  The
    damaged directory is left as it was (staging is discarded): a
    failed repair never makes things worse.

    Attributes:
        reason: a short machine-readable cause (``"peer-damaged"``,
            ``"stage-mismatch"``, ``"install-failed"``, ...).
    """

    def __init__(self, message: str, *, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class NetworkError(ReproError):
    """Root of the network front-end failures (:mod:`repro.netserve`)."""


class ProtocolError(NetworkError):
    """The wire protocol was violated: an unparseable frame, a request
    before ``open_session``, an unknown operation, or a frame the peer
    refuses to accept.

    The server answers with a final error frame and closes the
    connection -- a protocol violation never hangs the peer.
    """


class FrameTooLarge(ProtocolError):
    """A length prefix announced a frame beyond the configured maximum.

    Attributes:
        announced: the length the prefix claimed, in bytes.
        limit: the maximum the codec accepts.
    """

    def __init__(self, message: str, *, announced: int = 0, limit: int = 0) -> None:
        super().__init__(message)
        self.announced = announced
        self.limit = limit


class RemoteError(NetworkError):
    """A server-side failure relayed across the wire to a client.

    The client cannot re-raise the server's exact exception class (the
    payload is JSON), so the error *kind* travels as a string --
    ``"OverloadError"``, ``"AccessDenied"``, ... -- and callers branch
    on :attr:`kind` the way in-process callers branch on class.

    Attributes:
        kind: the server-side exception class name.
        remote_message: the server-side message verbatim.
    """

    def __init__(self, message: str, *, kind: str = "", remote_message: str = "") -> None:
        super().__init__(message)
        self.kind = kind
        self.remote_message = remote_message


class StorageError(ReproError, ValueError):
    """Malformed or unsupported database file."""


class StorageCorrupt(StorageError):
    """The file is damaged beyond what strict loading accepts.

    Lenient loading (:func:`repro.storage.load_from_file` with
    ``mode="lenient"``) may still recover the readable parts; this error
    is raised when even that is impossible (e.g. the XML itself is not
    well-formed).
    """


class DiskError(ReproError, OSError):
    """A raw OS disk failure, classified into the taxonomy.

    The storage and WAL layers never let a bare ``OSError`` escape a
    durability path: :func:`classify_disk_error` maps it to
    :class:`DiskFullError` or :class:`DiskIOError` so callers can
    branch -- disk-full is recoverable by reclaiming space, a device
    I/O error is not.  The ``OSError`` lineage is preserved so existing
    ``except OSError`` handlers keep working.

    Attributes:
        path: the file the operation touched, when known.
        op: the failing operation (``"open"``/``"read"``/``"write"``/
            ``"fsync"``/...), when known.
    """

    def __init__(self, message: str, *, path: str = "", op: str = "") -> None:
        # OSError.__init__ with a single argument keeps errno unset;
        # the original errno travels via __cause__ instead.
        super().__init__(message)
        self.path = path
        self.op = op


class DiskFullError(DiskError):
    """The volume is out of space (``ENOSPC``/``EDQUOT``).

    Recoverable without failing over: shed the write, reclaim space
    (checkpoint + retention prune), and retry -- the admission ladder
    in :class:`repro.serving.DatabaseServer` does exactly that.
    """


class DiskIOError(DiskError):
    """The device failed the operation (``EIO`` and friends).

    Not recoverable by the writer itself: the failure detector treats a
    persistently sick disk as a dead primary and promotes a replica.
    """


_DISK_FULL_ERRNOS = frozenset(
    code
    for code in (
        errno.ENOSPC,
        getattr(errno, "EDQUOT", None),
        getattr(errno, "EFBIG", None),
    )
    if code is not None
)


def classify_disk_error(
    exc: OSError, *, path: str = "", op: str = ""
) -> DiskError:
    """Map a raw ``OSError`` from a durability path into the taxonomy.

    ``ENOSPC``-family errnos become :class:`DiskFullError`; everything
    else (``EIO``, ``EROFS``, ``EBADF``, unknown) becomes
    :class:`DiskIOError`.  The returned error chains the original via
    ``__cause__`` conventions when raised with ``from exc``.
    """
    where = f" ({op} {path})" if path else (f" ({op})" if op else "")
    if exc.errno in _DISK_FULL_ERRNOS:
        return DiskFullError(f"disk full{where}: {exc}", path=path, op=op)
    return DiskIOError(f"disk I/O error{where}: {exc}", path=path, op=op)
