"""Unit and property tests for the numbering schemes.

The paper's requirements (section 3.1): geometry derivable from the
numbers alone, and -- for persistent schemes -- numbers never change
across updates.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.labels import (
    DOCUMENT_ID,
    LSDXScheme,
    NodeId,
    PersistentDeweyScheme,
    RenumberingRequired,
    RenumberingScheme,
    document_order_key,
)


class TestNodeId:
    def test_document_node_is_level_zero(self):
        assert DOCUMENT_ID.level == 0
        assert DOCUMENT_ID.is_document

    def test_document_node_has_no_parent(self):
        with pytest.raises(ValueError):
            DOCUMENT_ID.parent()

    def test_child_and_parent_roundtrip(self):
        child = DOCUMENT_ID.child(Fraction(1))
        assert child.parent() == DOCUMENT_ID
        assert child.level == 1

    def test_ancestors_enumerate_to_document(self):
        nid = DOCUMENT_ID.child(Fraction(1)).child(Fraction(2)).child(Fraction(3))
        chain = list(nid.ancestors())
        assert len(chain) == 3
        assert chain[-1] == DOCUMENT_ID

    def test_is_ancestor_is_proper(self):
        a = DOCUMENT_ID.child(Fraction(1))
        b = a.child(Fraction(1))
        assert a.is_ancestor_of(b)
        assert not a.is_ancestor_of(a)
        assert not b.is_ancestor_of(a)
        assert b.is_descendant_of(a)

    def test_unrelated_nodes_are_not_ancestors(self):
        a = DOCUMENT_ID.child(Fraction(1))
        b = DOCUMENT_ID.child(Fraction(2))
        assert not a.is_ancestor_of(b)
        assert not b.is_ancestor_of(a)

    def test_document_order_is_preorder(self):
        root = DOCUMENT_ID.child(Fraction(1))
        first = root.child(Fraction(1))
        first_kid = first.child(Fraction(1))
        second = root.child(Fraction(2))
        order = sorted(
            [second, first_kid, root, first, DOCUMENT_ID],
            key=document_order_key,
        )
        assert order == [DOCUMENT_ID, root, first, first_kid, second]

    def test_ordering_operators(self):
        a = DOCUMENT_ID.child(Fraction(1))
        b = DOCUMENT_ID.child(Fraction(2))
        assert a < b and a <= b and b > a and b >= a
        assert a <= a and a >= a

    def test_hashable_and_equal_by_value(self):
        a = DOCUMENT_ID.child(Fraction(1))
        b = DOCUMENT_ID.child(Fraction(1))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestPersistentDeweyScheme:
    def setup_method(self):
        self.scheme = PersistentDeweyScheme()

    def test_is_persistent(self):
        assert self.scheme.persistent

    def test_initial_component(self):
        assert self.scheme.initial_component() == Fraction(1)

    def test_between_two_components_is_midpoint(self):
        mid = self.scheme.component_between(Fraction(1), Fraction(2))
        assert Fraction(1) < mid < Fraction(2)

    def test_before_first(self):
        assert self.scheme.component_between(None, Fraction(1)) < Fraction(1)

    def test_after_last(self):
        assert self.scheme.component_between(Fraction(5), None) > Fraction(5)

    def test_empty_sibling_list(self):
        assert self.scheme.component_between(None, None) == Fraction(1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            self.scheme.component_between(Fraction(2), Fraction(1))

    def test_child_id_between_validates_parent(self):
        parent = DOCUMENT_ID.child(Fraction(1))
        stranger = DOCUMENT_ID.child(Fraction(2)).child(Fraction(1))
        with pytest.raises(ValueError):
            self.scheme.child_id_between(parent, stranger, None)

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=50))
    def test_random_insertions_never_collide(self, positions):
        """Dense insertion: components stay unique and ordered."""
        components = [self.scheme.initial_component()]
        for pos in positions:
            index = pos % (len(components) + 1)
            lo = components[index - 1] if index > 0 else None
            hi = components[index] if index < len(components) else None
            fresh = self.scheme.component_between(lo, hi)
            if lo is not None:
                assert fresh > lo
            if hi is not None:
                assert fresh < hi
            components.insert(index, fresh)
        assert components == sorted(components)
        assert len(set(components)) == len(components)


class TestLSDXScheme:
    def setup_method(self):
        self.scheme = LSDXScheme()

    def test_is_persistent(self):
        assert self.scheme.persistent

    def test_initial_key_not_ending_in_a(self):
        assert not self.scheme.initial_component().endswith("a")

    def test_between_adjacent_letters(self):
        key = self.scheme.component_between("b", "c")
        assert "b" < key < "c"

    def test_between_far_letters(self):
        key = self.scheme.component_between("b", "x")
        assert "b" < key < "x"

    def test_before_first(self):
        key = self.scheme.component_between(None, "b")
        assert key < "b"

    def test_after_last(self):
        key = self.scheme.component_between("z", None)
        assert key > "z"

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            self.scheme.component_between("c", "b")

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=60))
    @settings(max_examples=60)
    def test_random_insertions_never_collide(self, positions):
        components = [self.scheme.initial_component()]
        for pos in positions:
            index = pos % (len(components) + 1)
            lo = components[index - 1] if index > 0 else None
            hi = components[index] if index < len(components) else None
            fresh = self.scheme.component_between(lo, hi)
            if lo is not None:
                assert fresh > lo
            if hi is not None:
                assert fresh < hi
            components.insert(index, fresh)
        assert components == sorted(components)
        assert len(set(components)) == len(components)

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=40))
    @settings(max_examples=60)
    def test_keys_never_end_in_minimal_letter(self, positions):
        """The LSDX invariant that keeps room below every key."""
        components = [self.scheme.initial_component()]
        for pos in positions:
            index = pos % (len(components) + 1)
            lo = components[index - 1] if index > 0 else None
            hi = components[index] if index < len(components) else None
            fresh = self.scheme.component_between(lo, hi)
            components.insert(index, fresh)
        for key in components:
            assert not key.endswith("a"), key


class TestRenumberingScheme:
    def setup_method(self):
        self.scheme = RenumberingScheme()

    def test_is_not_persistent(self):
        assert not self.scheme.persistent

    def test_append_works_without_renumbering(self):
        assert self.scheme.component_between(Fraction(3), None) == Fraction(4)

    def test_gap_insert_works(self):
        mid = self.scheme.component_between(Fraction(2), Fraction(6))
        assert Fraction(2) < mid < Fraction(6)

    def test_adjacent_insert_requires_renumbering(self):
        with pytest.raises(RenumberingRequired):
            self.scheme.component_between(Fraction(1), Fraction(2))

    def test_before_first_at_floor_requires_renumbering(self):
        with pytest.raises(RenumberingRequired):
            self.scheme.component_between(None, Fraction(1))
