"""XUpdate: the paper's modification language (section 3.4).

Operation descriptions, the XML-syntax parser, and the unsecured
executor implementing formulae (2)-(9).  The access-controlled
semantics (axioms 18-25) live in :mod:`repro.security.write`.
"""

from .changeset import ChangeSet
from .executor import UpdateResult, XUpdateError, XUpdateExecutor
from .operations import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
    XUpdateOperation,
)
from .parser import XUpdateParseError, parse_xupdate
from .serializer import XUpdateSerializeError, dump_xupdate

__all__ = [
    "Append",
    "ChangeSet",
    "InsertAfter",
    "InsertBefore",
    "Remove",
    "Rename",
    "UpdateContent",
    "UpdateResult",
    "UpdateScript",
    "XUpdateError",
    "XUpdateExecutor",
    "XUpdateOperation",
    "XUpdateParseError",
    "XUpdateSerializeError",
    "dump_xupdate",
    "parse_xupdate",
]
