# Test lanes.  `make verify` is what CI should run: the full suite,
# then the fault-injection lane on its own so a kill-point that leaves
# partial state fails the build visibly.
PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test fault bench bench-json bench-smoke verify

test:
	$(PYTEST) -x -q

# Crash-safety lane: every named kill-point in the executor and the
# storage layer is injected and the atomicity invariant asserted.
fault:
	$(PYTEST) -x -q -m fault

bench:
	$(PYTEST) -q benchmarks

# Machine-readable benchmark results for regression tracking.
bench-json:
	$(PYTEST) -q benchmarks --benchmark-json=BENCH_3.json

# Fast serving-layer check: E20 at three small sizes, asserting the
# shared/incremental counters and a loose speedup bar (no timing saves).
bench-smoke:
	$(PYTEST) -q benchmarks/test_e20_view_maintenance.py -k smoke

verify: test fault bench-smoke
