"""repro -- Gabillon's formal access control model for XML databases.

A complete, from-scratch reproduction of *"A Formal Access Control
Model for XML Databases"* (Secure Data Management workshop at VLDB
2005): an XML tree store over persistent node numbering, an XPath 1.0
engine, an XUpdate engine, a Datalog engine hosting the paper's axioms,
and -- on top -- the access control model itself: position/read
privileges, RESTRICTED views, prioritized accept/deny policies, and
write operations evaluated on user views.

Quickstart::

    from repro import SecureXMLDatabase

    db = SecureXMLDatabase.from_xml("<patients>...</patients>")
    db.subjects.add_role("staff")
    db.subjects.add_user("laporte", member_of="staff")
    db.policy.grant("read", "//*", "staff")
    session = db.login("laporte")
    print(session.read_xml(indent="  "))
"""

from .errors import (
    CircuitOpenError,
    ConcurrentUpdateError,
    DeadlineExceeded,
    FailoverError,
    OverloadError,
    ReadOnlyReplica,
    RecoveryError,
    ReplicaDiverged,
    ReplicationError,
    ReproError,
    RetryExhausted,
    ServingError,
    StaleEpochError,
    StorageCorrupt,
    StorageError,
    UpdateAborted,
    WalCorruptionError,
    WalError,
    WalStreamGap,
    WalWriteError,
)
from .replication import (
    FailoverSupervisor,
    Replica,
    ReplicationRouter,
    RouteDecision,
)
from .serving import (
    AdmissionController,
    CircuitBreaker,
    DatabaseServer,
    Deadline,
    DedupedResult,
    DedupTable,
    RetryPolicy,
    RWLock,
)
from .security import (
    AccessDenied,
    AuditLog,
    InsecureWriteExecutor,
    PermissionResolver,
    PermissionTable,
    Policy,
    PolicyError,
    PolicyLintWarning,
    Privilege,
    SecureUpdateResult,
    SecureWriteExecutor,
    SecureXMLDatabase,
    SecurityRule,
    Session,
    SubjectError,
    SubjectHierarchy,
    Transaction,
    View,
    ViewBuilder,
)
from .xmltree import (
    Fragment,
    LSDXScheme,
    NodeId,
    NodeKind,
    PersistentDeweyScheme,
    RenumberingScheme,
    RESTRICTED,
    XMLDocument,
    XMLSyntaxError,
    element,
    parse_xml,
    render_tree,
    serialize,
    text,
)
from .xpath import XPathEngine, XPathEvaluationError, XPathSyntaxError
from .wal import RecoveryResult, WalStream, WriteAheadLog, recover
from .xupdate import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
    XUpdateExecutor,
    parse_xupdate,
)

__version__ = "1.0.0"

__all__ = [
    "AccessDenied",
    "AdmissionController",
    "Append",
    "AuditLog",
    "CircuitBreaker",
    "CircuitOpenError",
    "ConcurrentUpdateError",
    "DatabaseServer",
    "Deadline",
    "DeadlineExceeded",
    "DedupTable",
    "DedupedResult",
    "FailoverError",
    "FailoverSupervisor",
    "Fragment",
    "InsecureWriteExecutor",
    "InsertAfter",
    "InsertBefore",
    "LSDXScheme",
    "NodeId",
    "NodeKind",
    "OverloadError",
    "PermissionResolver",
    "PermissionTable",
    "PersistentDeweyScheme",
    "Policy",
    "PolicyError",
    "PolicyLintWarning",
    "Privilege",
    "RESTRICTED",
    "ReadOnlyReplica",
    "RecoveryError",
    "RecoveryResult",
    "Remove",
    "Rename",
    "RenumberingScheme",
    "Replica",
    "ReplicaDiverged",
    "ReplicationError",
    "ReplicationRouter",
    "ReproError",
    "RouteDecision",
    "RetryExhausted",
    "RetryPolicy",
    "RWLock",
    "SecureUpdateResult",
    "SecureWriteExecutor",
    "SecureXMLDatabase",
    "SecurityRule",
    "ServingError",
    "Session",
    "StaleEpochError",
    "StorageCorrupt",
    "StorageError",
    "SubjectError",
    "SubjectHierarchy",
    "Transaction",
    "UpdateAborted",
    "UpdateContent",
    "UpdateScript",
    "View",
    "ViewBuilder",
    "WalCorruptionError",
    "WalError",
    "WalStream",
    "WalStreamGap",
    "WalWriteError",
    "WriteAheadLog",
    "XMLDocument",
    "XMLSyntaxError",
    "XPathEngine",
    "XPathEvaluationError",
    "XPathSyntaxError",
    "XUpdateExecutor",
    "element",
    "parse_xml",
    "parse_xupdate",
    "recover",
    "render_tree",
    "serialize",
    "text",
    "__version__",
]
