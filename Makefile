# Test lanes.  `make verify` is what CI should run: the full suite,
# then the fault-injection lane on its own so a kill-point that leaves
# partial state fails the build visibly.
PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test fault chaos recovery replication netserve failover scrub bench bench-json bench-smoke verify

test:
	$(PYTEST) -x -q

# Crash-safety lane: every named kill-point in the executor and the
# storage layer is injected and the atomicity invariant asserted.
# Differential mode is armed so every compiled XPath evaluation in the
# lane is re-checked against the AST interpreter (xpath/compiler.py).
fault:
	REPRO_XPATH_DIFFERENTIAL=1 $(PYTEST) -x -q -m fault

# Concurrency chaos lane: 200+ seeded schedules through the serving
# layer (plus real-thread soaks), asserting serial-equivalence of the
# committed history and that no unhandled exception escapes.
chaos:
	$(PYTEST) -x -q -m chaos

# Crash-recovery lane: 200+ seeded crash schedules over the write-ahead
# log (every wal-* kill-point armed at random), asserting that recovery
# restores exactly the committed prefix -- version, document, policy
# and every user's view -- plus hypothesis properties over arbitrary
# torn tails.
recovery:
	$(PYTEST) -x -q -m recovery

# Replication convergence lane: 200+ seeded chaos schedules shipping
# the write-ahead log to replicas while killing them mid-replay and
# mid-catch-up, asserting every survivor converges to the primary's
# exact version and byte-identical serialized state, read-your-writes
# holds per-request, and a diverged replica never serves a read.
replication:
	$(PYTEST) -x -q -m replication

# Network front-end lane: the framing codec's round-trip properties,
# the asyncio protocol server end to end over real sockets (sessions,
# typed results, deadlines, pipelining, close-on-violation), and the
# group committer's leader/follower, amortization, isolation and
# crash-window semantics (group-* and net-mid-frame kill-points).
netserve:
	$(PYTEST) -x -q -m netserve

# Supervised-failover lane: 300+ seeded schedules killing the primary
# mid-group-commit and the supervisor mid-promotion (supervisor-*,
# promote-*, old-primary-late-ack kill-points), asserting that no
# acknowledged write is ever lost across a promotion, client retries
# under one idempotency key apply exactly once, and a stale-epoch
# (deposed) primary never acknowledges a write.
failover:
	$(PYTEST) -x -q -m failover

# Integrity lane: 200+ seeded disk-fault schedules (bit flips, EIO,
# ENOSPC, short writes) through the serving layer, plus the online
# scrubber and anti-entropy repair suites, asserting no acknowledged
# write is lost, quarantined corruption is never served, and repair
# from a healthy peer converges to byte-identical state.
scrub:
	REPRO_SCRUB_SOAK_SEEDS=200 $(PYTEST) -x -q -m scrub

bench:
	$(PYTEST) -q benchmarks

# Machine-readable benchmark results for regression tracking, one file
# per experiment (always written to the repo root, so reruns overwrite
# in place instead of scattering) -- E20..E24 accumulate the perf
# trajectory across PRs.
bench-json:
	$(PYTEST) -q benchmarks/test_e20_view_maintenance.py \
		--benchmark-json=$(CURDIR)/BENCH_E20.json
	$(PYTEST) -q benchmarks/test_e21_serving_under_load.py \
		--benchmark-json=$(CURDIR)/BENCH_E21.json
	rm -f $(CURDIR)/BENCH_E22.json
	REPRO_BENCH_SERIES_JSON=$(CURDIR)/BENCH_E22.json \
		$(PYTEST) -q -s benchmarks/test_e22_wal.py
	$(PYTEST) -q benchmarks/test_e23_compiled_policy.py \
		--benchmark-json=$(CURDIR)/BENCH_E23.json
	rm -f $(CURDIR)/BENCH_E24.json
	REPRO_BENCH_SERIES_JSON=$(CURDIR)/BENCH_E24.json \
		$(PYTEST) -q -s benchmarks/test_e24_replication.py
	rm -f $(CURDIR)/BENCH_E25.json
	REPRO_BENCH_SERIES_JSON=$(CURDIR)/BENCH_E25.json \
		$(PYTEST) -q -s benchmarks/test_e25_netserve.py
	rm -f $(CURDIR)/BENCH_E26.json
	REPRO_BENCH_SERIES_JSON=$(CURDIR)/BENCH_E26.json \
		$(PYTEST) -q -s benchmarks/test_e26_failover.py
	rm -f $(CURDIR)/BENCH_E27.json
	REPRO_BENCH_SERIES_JSON=$(CURDIR)/BENCH_E27.json \
		$(PYTEST) -q -s benchmarks/test_e27_scrub.py

# Fast serving-layer checks: E20 at three small sizes (shared and
# incremental counters, loose speedup bar), E21's counter-only
# overload variants, E22's durability invariants, and E24's
# convergence smoke.  No timing saves.
bench-smoke:
	$(PYTEST) -q benchmarks/test_e20_view_maintenance.py \
		benchmarks/test_e21_serving_under_load.py \
		benchmarks/test_e22_wal.py \
		benchmarks/test_e24_replication.py \
		benchmarks/test_e25_netserve.py \
		benchmarks/test_e26_failover.py \
		benchmarks/test_e27_scrub.py -k smoke

verify: test fault chaos recovery replication netserve failover scrub bench-smoke
