# Test lanes.  `make verify` is what CI should run: the full suite,
# then the fault-injection lane on its own so a kill-point that leaves
# partial state fails the build visibly.
PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test fault chaos recovery bench bench-json bench-smoke verify

test:
	$(PYTEST) -x -q

# Crash-safety lane: every named kill-point in the executor and the
# storage layer is injected and the atomicity invariant asserted.
# Differential mode is armed so every compiled XPath evaluation in the
# lane is re-checked against the AST interpreter (xpath/compiler.py).
fault:
	REPRO_XPATH_DIFFERENTIAL=1 $(PYTEST) -x -q -m fault

# Concurrency chaos lane: 200+ seeded schedules through the serving
# layer (plus real-thread soaks), asserting serial-equivalence of the
# committed history and that no unhandled exception escapes.
chaos:
	$(PYTEST) -x -q -m chaos

# Crash-recovery lane: 200+ seeded crash schedules over the write-ahead
# log (every wal-* kill-point armed at random), asserting that recovery
# restores exactly the committed prefix -- version, document, policy
# and every user's view -- plus hypothesis properties over arbitrary
# torn tails.
recovery:
	$(PYTEST) -x -q -m recovery

bench:
	$(PYTEST) -q benchmarks

# Machine-readable benchmark results for regression tracking.  The
# compiled-policy ablation (E23) gets its own file so the perf
# trajectory across PRs accumulates per experiment.
bench-json:
	$(PYTEST) -q benchmarks --benchmark-json=BENCH_3.json
	$(PYTEST) -q benchmarks/test_e23_compiled_policy.py \
		--benchmark-json=BENCH_E23.json

# Fast serving-layer checks: E20 at three small sizes (shared and
# incremental counters, loose speedup bar), E21's counter-only
# overload variants, and E22's durability invariants.  No timing saves.
bench-smoke:
	$(PYTEST) -q benchmarks/test_e20_view_maintenance.py \
		benchmarks/test_e21_serving_under_load.py \
		benchmarks/test_e22_wal.py -k smoke

verify: test fault chaos recovery bench-smoke
