"""Conflict resolution: deriving ``perm(s, n, r)`` (paper axiom 14).

Axiom 14 reads: subject ``s`` definitely holds privilege ``r`` on node
``n`` iff some accept rule (for a subject s' with ``isa(s, s')``, whose
path addresses ``n``) has **no later deny rule** covering the same
subject/privilege/node.  With unique priorities this is exactly
"the latest matching rule wins; no matching rule means no privilege"
(closed-world assumption) -- which is how the resolver computes it: rules
are replayed in priority order and each one overwrites the effect on the
nodes its path selects.

The ``$USER`` variable in rule paths is bound to the login of the user
whose permissions are being derived, supporting the paper's
"patients may access their own medical file" rules 4-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from ..xmltree.document import XMLDocument
from ..xmltree.labels import NodeId
from ..xpath.engine import XPathEngine
from .policy import ACCEPT, Policy, SecurityRule
from .privileges import Privilege

__all__ = ["PermissionTable", "PermissionResolver"]


@dataclass
class PermissionTable:
    """The derived ``perm`` facts for one user against one document.

    Attributes:
        user: the subject the table was derived for.
        granted: privilege -> set of node ids on which it is held.
        winning_rule: (privilege, node) -> the rule that decided the
            outcome (for audit and the policy-explanation API).
    """

    user: str
    granted: Dict[Privilege, Set[NodeId]] = field(default_factory=dict)
    winning_rule: Dict[Tuple[Privilege, NodeId], SecurityRule] = field(
        default_factory=dict
    )

    def holds(self, nid: NodeId, privilege: Privilege) -> bool:
        """The ``perm(user, nid, privilege)`` fact."""
        return nid in self.granted.get(privilege, ())

    def nodes_with(self, privilege: Privilege) -> FrozenSet[NodeId]:
        """All nodes on which the user holds ``privilege``."""
        return frozenset(self.granted.get(privilege, ()))

    def explain(self, nid: NodeId, privilege: Privilege) -> Optional[SecurityRule]:
        """The rule that decided this (privilege, node), if any matched."""
        return self.winning_rule.get((privilege, nid))

    def facts(self) -> Set[Tuple[str, NodeId, str]]:
        """The ``perm(s, n, r)`` facts as tuples, for the formal layer."""
        return {
            (self.user, nid, privilege.value)
            for privilege, nodes in self.granted.items()
            for nid in nodes
        }


class PermissionResolver:
    """Derives :class:`PermissionTable` objects from a policy.

    Args:
        engine: the XPath engine used to evaluate rule paths on the
            source document (axiom 14 evaluates ``xpath`` on the source
            theory ``db``).  The engine should have the paper-compat
            ``lone_variable_name_test`` enabled if policies use the
            paper's ``[$USER]`` shorthand.
    """

    def __init__(
        self,
        engine: Optional[XPathEngine] = None,
        cache_paths: bool = False,
    ) -> None:
        self._engine = engine if engine is not None else XPathEngine(
            lone_variable_name_test=True, star_matches_text=True
        )
        # Optional cross-user cache: a rule path that never mentions
        # $USER selects the same nodes for every user, so re-evaluating
        # it per user is pure waste (ablation E18).  Keyed weakly by
        # document and guarded by the document's mutation stamp.
        self._cache_paths = cache_paths
        import weakref

        self._path_cache: "weakref.WeakKeyDictionary[XMLDocument, Tuple[int, Dict[str, Tuple[NodeId, ...]]]]" = (
            weakref.WeakKeyDictionary()
        )

    @property
    def engine(self) -> XPathEngine:
        return self._engine

    @property
    def cache_paths(self) -> bool:
        return self._cache_paths

    def _select_rule_path(
        self,
        doc: XMLDocument,
        path: str,
        variables: Dict[str, str],
    ):
        """Evaluate one rule path, caching user-independent paths."""
        if not self._cache_paths or "$" in path:
            return self._engine.select(doc, path, variables=variables)
        entry = self._path_cache.get(doc)
        if entry is None or entry[0] != doc.mutation_stamp:
            entry = (doc.mutation_stamp, {})
            self._path_cache[doc] = entry
        cached = entry[1].get(path)
        if cached is None:
            cached = tuple(self._engine.select(doc, path, variables=variables))
            entry[1][path] = cached
        return cached

    def resolve(
        self,
        doc: XMLDocument,
        policy: Policy,
        user: str,
        privileges: Optional[Iterable[Privilege]] = None,
    ) -> PermissionTable:
        """Derive all ``perm(user, n, r)`` facts for one user.

        Args:
            doc: the source document (theory ``db``).
            policy: the security policy (set ``P``).
            user: the subject whose privileges are derived; ``$USER``
                binds to this login in rule paths.
            privileges: restrict derivation to these privileges
                (defaults to all five).

        Raises:
            repro.security.subjects.SubjectError: if ``user`` is not a
                declared subject.
        """
        table = PermissionTable(user=user)
        variables = {"USER": user}
        wanted = tuple(privileges) if privileges is not None else tuple(Privilege)
        effects: Dict[Privilege, Dict[NodeId, SecurityRule]] = {
            p: {} for p in wanted
        }
        for privilege in wanted:
            # Priority order: later rules overwrite earlier outcomes on
            # the nodes they address -- the operational form of "no
            # subsequent deny" in axiom 14.
            for rule in policy.rules_for(user, privilege):
                selected = self._select_rule_path(doc, rule.path, variables)
                outcome = effects[privilege]
                for nid in selected:
                    outcome[nid] = rule
        for privilege in wanted:
            granted: Set[NodeId] = set()
            for nid, rule in effects[privilege].items():
                table.winning_rule[(privilege, nid)] = rule
                if rule.effect == ACCEPT:
                    granted.add(nid)
            table.granted[privilege] = granted
        return table
