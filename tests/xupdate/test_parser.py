"""XUpdate XML-syntax parser tests."""

import pytest

from repro.xmltree import NodeKind
from repro.xupdate import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    XUpdateParseError,
    parse_xupdate,
)

WRAP = '<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">{}</xupdate:modifications>'


def parse_one(body):
    script = parse_xupdate(WRAP.format(body))
    assert len(script) >= 1
    return script.operations[0]


class TestInstructions:
    def test_rename(self):
        op = parse_one('<xupdate:rename select="//service">department</xupdate:rename>')
        assert op == Rename("//service", "department")

    def test_update(self):
        op = parse_one('<xupdate:update select="//d">pharyngitis</xupdate:update>')
        assert op == UpdateContent("//d", "pharyngitis")

    def test_remove(self):
        op = parse_one('<xupdate:remove select="//franck"/>')
        assert op == Remove("//franck")

    def test_append_with_element_constructor(self):
        op = parse_one(
            '<xupdate:append select="/patients">'
            '<xupdate:element name="albert"><service>cardiology</service>'
            "</xupdate:element></xupdate:append>"
        )
        assert isinstance(op, Append)
        assert op.path == "/patients"
        assert op.tree.label == "albert"
        assert op.tree.children[0].label == "service"

    def test_append_with_attribute_constructor(self):
        op = parse_one(
            '<xupdate:append select="/p">'
            '<xupdate:element name="a">'
            '<xupdate:attribute name="id">7</xupdate:attribute>'
            "</xupdate:element></xupdate:append>"
        )
        assert op.tree.attributes == (("id", "7"),)

    def test_append_with_text_constructor(self):
        op = parse_one(
            '<xupdate:append select="/p"><xupdate:text>hi</xupdate:text>'
            "</xupdate:append>"
        )
        assert op.tree.kind is NodeKind.TEXT
        assert op.tree.label == "hi"

    def test_append_with_literal_xml(self):
        op = parse_one(
            '<xupdate:append select="/p"><rec><v>1</v></rec></xupdate:append>'
        )
        assert op.tree.label == "rec"

    def test_insert_before_and_after(self):
        ops = parse_xupdate(
            WRAP.format(
                '<xupdate:insert-before select="//a"><x/></xupdate:insert-before>'
                '<xupdate:insert-after select="//b"><y/></xupdate:insert-after>'
            )
        ).operations
        assert isinstance(ops[0], InsertBefore)
        assert isinstance(ops[1], InsertAfter)

    def test_multiple_content_items_expand(self):
        script = parse_xupdate(
            WRAP.format('<xupdate:append select="/p"><a/><b/></xupdate:append>')
        )
        assert len(script) == 2
        assert all(isinstance(op, Append) for op in script)

    def test_operations_keep_order(self):
        script = parse_xupdate(
            WRAP.format(
                '<xupdate:rename select="//a">b</xupdate:rename>'
                '<xupdate:remove select="//b"/>'
            )
        )
        assert [type(op).__name__ for op in script] == ["Rename", "Remove"]

    def test_alternate_prefix_accepted(self):
        script = parse_xupdate(
            '<xu:modifications xmlns:xu="http://www.xmldb.org/xupdate">'
            '<xu:remove select="//a"/></xu:modifications>'
        )
        assert isinstance(script.operations[0], Remove)


class TestErrors:
    def test_wrong_root(self):
        with pytest.raises(XUpdateParseError):
            parse_xupdate("<not-modifications/>")

    def test_missing_select(self):
        with pytest.raises(XUpdateParseError):
            parse_xupdate(WRAP.format("<xupdate:remove/>"))

    def test_unknown_instruction(self):
        with pytest.raises(XUpdateParseError):
            parse_xupdate(WRAP.format('<xupdate:transmogrify select="/"/>'))

    def test_non_xupdate_element_at_top_level(self):
        with pytest.raises(XUpdateParseError):
            parse_xupdate(WRAP.format('<rogue select="/"/>'))

    def test_stray_text_rejected(self):
        with pytest.raises(XUpdateParseError):
            parse_xupdate(WRAP.format("stray"))

    def test_element_constructor_needs_name(self):
        with pytest.raises(XUpdateParseError):
            parse_xupdate(
                WRAP.format(
                    '<xupdate:append select="/"><xupdate:element/></xupdate:append>'
                )
            )

    def test_empty_creation_content(self):
        with pytest.raises(XUpdateParseError):
            parse_xupdate(WRAP.format('<xupdate:append select="/"/>'))

    def test_rename_content_must_be_text(self):
        with pytest.raises(XUpdateParseError):
            parse_xupdate(
                WRAP.format('<xupdate:rename select="/"><b/></xupdate:rename>')
            )

    def test_variable_unsupported(self):
        with pytest.raises(XUpdateParseError):
            parse_xupdate(
                WRAP.format('<xupdate:variable name="x" select="/"/>')
            )


class TestRoundtripWithExecutor:
    def test_paper_style_script_end_to_end(self):
        from repro.xmltree import parse_xml, serialize
        from repro.xupdate import XUpdateExecutor

        doc = parse_xml("<patients><franck><diagnosis>flu</diagnosis></franck></patients>")
        script = parse_xupdate(
            WRAP.format(
                '<xupdate:update select="/patients/franck/diagnosis">cold</xupdate:update>'
                '<xupdate:append select="/patients">'
                '<xupdate:element name="albert"/></xupdate:append>'
            )
        )
        result = XUpdateExecutor().apply(doc, script)
        out = serialize(result.document)
        assert out == (
            "<patients><franck><diagnosis>cold</diagnosis></franck>"
            "<albert/></patients>"
        )
