"""E24 (added): what WAL-shipping replication buys and costs.

Three questions the replication layer raises:

**Read throughput vs replica count.**  Every replica owns its own
reader-writer lock and its own shared view cache, so reads routed
across the pool stop contending on the primary's lock.  Rows compare
a fixed concurrent read load served by the primary alone against the
same load spread over 1, 2 and 4 replicas.  The invariant behind the
numbers: every routed read satisfies read-your-writes (served version
>= the caller's token), whatever the pool size.

**Catch-up time vs lag.**  A replica that falls behind replays the
missing suffix through the real secured path, so catch-up cost grows
with the lag -- which is precisely what checkpoints bound: re-seeding
from a fresh snapshot makes the replay distance zero no matter how
long the history.

**Failover time.**  When a replica diverges it is quarantined on the
spot; the rows time the full recovery cycle -- detect, quarantine,
re-seed, converge -- against the log length at the moment of failure.

The smoke variant (``-k smoke``) runs the same invariants at toy sizes
with no timing bars, so the lane stays meaningful on loaded CI
machines.
"""

import shutil
import time

from conftest import print_series, synthetic_hospital

from repro.errors import ReplicaDiverged
from repro.replication import Replica, ReplicationRouter
from repro.serving import DatabaseServer
from repro.testing.faults import run_threads
from repro.wal import WriteAheadLog
from repro.xmltree import NodeKind
from repro.xupdate import UpdateContent

PATIENTS = 60
READERS = 4
READS_PER_THREAD = 30
LAG_SIZES = (20, 80, 240)

READ_USERS = ("laporte", "beaufort", "richard")


def committed_stream(db, commits):
    """Apply ``commits`` deterministic diagnosis updates (each is one
    WAL record)."""
    for index in range(commits):
        db.admin_update(
            UpdateContent(
                f"//patient{index % PATIENTS:05d}/diagnosis",
                f"angina-{index}",
            )
        )


def build_primary(tmp_path, label, patients=PATIENTS):
    db = synthetic_hospital(patients)
    wal_dir = str(tmp_path / f"{label}.wal")
    wal = WriteAheadLog(wal_dir, fsync="os")
    db.attach_wal(wal)
    wal.checkpoint(db)
    return db, wal, wal_dir


def timed_read_load(router):
    """READERS concurrent threads, each issuing routed reads; returns
    (elapsed seconds, total reads)."""

    def worker(index):
        user = READ_USERS[index % len(READ_USERS)]
        for _ in range(READS_PER_THREAD):
            assert router.query(user, "count(//diagnosis)") is not None

    started = time.perf_counter()
    errors = run_threads(worker, READERS)
    elapsed = time.perf_counter() - started
    assert errors == [None] * READERS
    return elapsed, READERS * READS_PER_THREAD


def test_e24_read_throughput_vs_replica_count(tmp_path):
    rows = [("pool", "reads", "reads/s", "replica share")]
    for count in (0, 1, 2, 4):
        db, wal, wal_dir = build_primary(tmp_path, f"pool{count}")
        committed_stream(db, 10)
        server = DatabaseServer(db)
        replicas = [Replica(wal_dir) for _ in range(count)]
        router = ReplicationRouter(server, replicas, trace=True)
        elapsed, reads = timed_read_load(router)
        stats = router.stats()
        served = stats["reads_to_replicas"]
        rows.append(
            (f"{count} replicas", reads, f"{reads / elapsed:.0f}",
             f"{served}/{reads}")
        )
        # read-your-writes held on every single routed read
        for decision in router.decisions:
            assert decision.served_version >= decision.token
        if count:
            # the pool carried the load, and spread it: every replica
            # served some of it
            assert served == reads
            assert all(r.stats()["reads"] > 0 for r in replicas)
        else:
            assert stats["reads_to_primary"] == reads
        shutil.rmtree(wal_dir)
    print_series("E24 read throughput vs replica count", rows)


def test_e24_catchup_time_vs_lag(tmp_path):
    rows = [("lag", "replayed", "catch-up ms")]
    catchup_times = {}
    for lag in LAG_SIZES:
        db, wal, wal_dir = build_primary(tmp_path, f"lag{lag}")
        replica = Replica(wal_dir)  # in sync at version 0
        committed_stream(db, lag)  # ...and now `lag` records behind
        assert replica.lag() == lag
        started = time.perf_counter()
        advanced = replica.sync()
        elapsed = time.perf_counter() - started
        assert advanced == lag and replica.version == db.version
        catchup_times[lag] = elapsed
        rows.append((f"{lag} records", advanced, f"{elapsed * 1000:.2f}"))
        shutil.rmtree(wal_dir)
    # a checkpoint collapses the replay distance to zero
    db, wal, wal_dir = build_primary(tmp_path, "ckpt")
    committed_stream(db, LAG_SIZES[-1])
    wal.checkpoint(db)
    started = time.perf_counter()
    replica = Replica(wal_dir)  # seeds from the snapshot: no replay
    elapsed = time.perf_counter() - started
    assert replica.version == db.version
    rows.append((f"{LAG_SIZES[-1]} + checkpoint", 0,
                 f"{elapsed * 1000:.2f}"))
    print_series("E24 catch-up time vs lag", rows)
    shutil.rmtree(wal_dir)


def diverge(replica):
    doc = replica.database.document
    doc.append_child(doc.root, NodeKind.ELEMENT, "rot")


def test_e24_failover_time_vs_history_length(tmp_path):
    rows = [("history", "failover ms")]
    for commits in (20, 80):
        db, wal, wal_dir = build_primary(tmp_path, f"fo{commits}")
        committed_stream(db, commits)
        wal.checkpoint(db)
        replica = Replica(wal_dir)
        diverge(replica)
        wal.checkpoint(db)  # the digest that exposes the rot
        started = time.perf_counter()
        try:
            replica.sync()
        except ReplicaDiverged:
            pass
        assert replica.quarantined
        replica.catch_up()  # detect -> quarantine -> re-seed
        elapsed = time.perf_counter() - started
        assert not replica.quarantined
        assert replica.version == db.version
        rows.append((f"{commits} commits", f"{elapsed * 1000:.2f}"))
        shutil.rmtree(wal_dir)
    print_series("E24 failover (detect + re-seed) time", rows)


def test_e24_smoke_convergence(tmp_path):
    """Counter-only smoke: a small pool converges byte-identically and
    read-your-writes holds on every routed read."""
    from repro.storage import dump_state

    db, wal, wal_dir = build_primary(tmp_path, "smoke", patients=10)
    server = DatabaseServer(db)
    replicas = [Replica(wal_dir) for _ in range(2)]
    router = ReplicationRouter(server, replicas, trace=True)
    committed_stream(db, 5)
    assert router.query("laporte", "count(//diagnosis)") is not None
    for replica in replicas:
        replica.sync()
        assert replica.version == db.version
        assert dump_state(
            replica.database.document,
            replica.database.subjects,
            replica.database.policy,
        ) == dump_state(db.document, db.subjects, db.policy)
    for decision in router.decisions:
        assert decision.served_version >= decision.token


def test_e24_smoke_quarantine_blocks_reads(tmp_path):
    db, wal, wal_dir = build_primary(tmp_path, "smoke-q", patients=10)
    replica = Replica(wal_dir)
    diverge(replica)
    committed_stream(db, 2)
    wal.checkpoint(db)
    try:
        replica.sync()
    except ReplicaDiverged:
        pass
    assert replica.quarantined
    router = ReplicationRouter(DatabaseServer(db), [replica], trace=True)
    assert router.query("laporte", "count(//diagnosis)") is not None
    assert router.decisions[-1].source == "primary"
    replica.catch_up()
    assert replica.version == db.version
