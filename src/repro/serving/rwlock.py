"""A reader-writer lock with writer preference and deadline-aware
acquisition.

The serving discipline (DESIGN.md §9): many sessions *read* views
concurrently -- view serving only mutates internally-locked caches --
while writers serialize, so a script's selection, privilege checks and
commit all happen against one frozen database generation.  Python's
standard library has no RW lock, so this module provides one:

- readers share the lock; a reader never blocks another reader;
- writers are exclusive, and *preferred*: once a writer is waiting, new
  readers queue behind it (no writer starvation under read-heavy load);
- both acquisition paths take an optional timeout so a per-request
  :class:`~repro.serving.retry.Deadline` bounds the wait.

The lock is not reentrant in either mode, and upgrading (read -> write)
is deliberately unsupported -- it deadlocks two upgraders against each
other by construction.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["RWLock"]


class RWLock:
    """A shared/exclusive lock with writer preference.

    Example::

        lock = RWLock()
        with lock.read_locked():
            ...  # many threads may be here at once
        with lock.write_locked():
            ...  # exactly one thread, no readers
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # shared (reader) side
    # ------------------------------------------------------------------
    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        """Acquire in shared mode; False when ``timeout`` expires first.

        New readers queue behind any waiting writer (writer
        preference), but never behind each other.
        """
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer and self._writers_waiting == 0,
                timeout=timeout,
            )
            if not ok:
                return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        """Release one shared hold."""
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # exclusive (writer) side
    # ------------------------------------------------------------------
    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        """Acquire in exclusive mode; False when ``timeout`` expires
        first (any queued-writer claim is withdrawn on timeout)."""
        with self._cond:
            self._writers_waiting += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer and self._readers == 0,
                    timeout=timeout,
                )
                if not ok:
                    return False
                self._writer = True
                return True
            finally:
                self._writers_waiting -= 1
                if not self._writer:
                    # Timed out: let readers we were blocking proceed.
                    self._cond.notify_all()

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without a matching acquire")
            self._writer = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # context managers
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self, timeout: Optional[float] = None) -> Iterator[bool]:
        """Hold the lock in shared mode for a ``with`` block.

        Yields True when acquired; on timeout yields False and the
        block runs *without* the lock (callers that passed a timeout
        must check the yielded flag).
        """
        ok = self.acquire_read(timeout)
        try:
            yield ok
        finally:
            if ok:
                self.release_read()

    @contextmanager
    def write_locked(self, timeout: Optional[float] = None) -> Iterator[bool]:
        """Hold the lock in exclusive mode for a ``with`` block (same
        timeout contract as :meth:`read_locked`)."""
        ok = self.acquire_write(timeout)
        try:
            yield ok
        finally:
            if ok:
                self.release_write()
