"""Persistence round-trip for multi-document collections."""

import pytest

from repro.security import SecureCollection
from repro.storage import StorageError, dump_collection, load_collection
from repro.xupdate import UpdateContent


@pytest.fixture
def collection():
    c = SecureCollection()
    c.subjects.add_role("staff")
    c.subjects.add_user("nina", member_of="staff")
    c.policy.grant("read", "//node()", "staff")
    c.policy.deny("read", "//salary/text()", "staff")
    c.policy.grant("position", "//salary/text()", "staff")
    c.policy.grant("update", "//bed/text()", "staff")
    c.add_document("patients", "<patients><p><bed>12</bed></p></patients>")
    c.add_document("payroll", "<payroll><e><salary>9000</salary></e></payroll>")
    return c


class TestRoundTrip:
    def test_names_and_documents_survive(self, collection):
        again = load_collection(dump_collection(collection))
        assert again.names() == collection.names()
        for name in collection.names():
            assert (
                again.login("nina").read_xml(name)
                == collection.login("nina").read_xml(name)
            )

    def test_policy_and_subjects_survive(self, collection):
        again = load_collection(dump_collection(collection))
        assert list(again.policy.facts()) == list(collection.policy.facts())
        assert again.subjects.subjects == collection.subjects.subjects

    def test_dump_is_stable(self, collection):
        once = dump_collection(collection)
        assert dump_collection(load_collection(once)) == once

    def test_writes_work_after_reload(self, collection):
        again = load_collection(dump_collection(collection))
        result = again.login("nina").execute(
            "patients", UpdateContent("//bed", "7"), strict=True
        )
        assert result.fully_applied
        assert "7" in again.login("nina").read_xml("patients")

    def test_restricted_labels_after_reload(self, collection):
        again = load_collection(dump_collection(collection))
        xml = again.login("nina").read_xml("payroll")
        assert "RESTRICTED" in xml
        assert "9000" not in xml

    def test_empty_collection(self):
        c = SecureCollection()
        again = load_collection(dump_collection(c))
        assert again.names() == []


class TestErrors:
    def test_wrong_root(self):
        with pytest.raises(StorageError):
            load_collection("<securedb/>")

    def test_duplicate_document_names_rejected(self):
        with pytest.raises(Exception):
            load_collection(
                '<securecollection version="1"><subjects/><policy/>'
                '<document name="a"><a/></document>'
                '<document name="a"><b/></document>'
                "</securecollection>"
            )

    def test_two_roots_in_one_document(self):
        with pytest.raises(StorageError):
            load_collection(
                '<securecollection version="1"><subjects/><policy/>'
                '<document name="a"><a/><b/></document>'
                "</securecollection>"
            )
