"""XPath compilation: AST -> reusable closure pipeline.

The interpreted evaluator (:mod:`repro.xpath.evaluator`) re-walks the
AST on every evaluation: each step re-dispatches on axis and node-test
types, every predicate is re-inspected, and the ``//name`` fast path is
re-detected per call.  This module performs all of that analysis once,
at compile time, following lxml's pattern of compiling an XPath string
into a reusable, shareable evaluator object:

- **per-step closures**: axis traversal, node test and predicates are
  resolved to concrete closures; evaluation is a fold over the step
  pipeline with an early exit on an empty intermediate node-set;
- **axis fusion**: the ``//`` desugar pair ``descendant-or-self::node()
  / child::T`` compiles to a single descendant scan (answered from the
  document's label/kind indexes when available, exactly like the
  interpreter's fast path);
- **constant folding**: a predicate whose expression is context-free
  (literals, numbers, arithmetic/comparisons over them) is folded at
  compile time -- ``[3]`` becomes a slice, ``[true-valued]`` disappears,
  ``[false-valued]`` and out-of-domain positions like ``[0]`` or
  ``[2.5]`` become a constant-empty filter that short-circuits the rest
  of the pipeline.

Compiled evaluators are pure closures over immutable AST data: they are
thread-safe and reusable across documents, like lxml's ``XPath``
objects.  Paper-compat options (``lone_variable_name_test``,
``star_matches_text``) are baked in at compile time, so a compiled
evaluator must only be run under contexts carrying the same options --
:meth:`repro.xpath.engine.XPathEngine.compile_evaluator` guarantees
this by compiling with the engine's own configuration.

Differential mode
-----------------

Compiled evaluation is an optimization, never a semantics fork.  With
differential mode enabled (the ``REPRO_XPATH_DIFFERENTIAL`` environment
variable, or :func:`set_differential`) every compiled evaluation also
runs the interpreted evaluator on the same context and raises
:class:`XPathDifferentialError` on any disagreement.  ``make fault``
runs the fault lane with the mode armed, so every secure-write
kill-point schedule doubles as a compiled-vs-interpreted equivalence
check.
"""

from __future__ import annotations

import math
import os
from types import SimpleNamespace
from typing import Callable, List, Optional, Tuple

from ..xmltree.labels import DOCUMENT_ID, NodeId
from ..xmltree.node import NodeKind
from .ast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    UnionExpr,
    VariableRef,
)
from .evaluator import (
    Context,
    XPathEvaluationError,
    _arithmetic,
    _compare_equality,
    _compare_relational,
    _indexed_candidates,
    evaluate as _interpret,
)
from .functions import XPathFunctionError
from .values import (
    NodeSet,
    XPathValue,
    is_node_set,
    sort_document_order,
    to_boolean,
    to_string,
)

__all__ = [
    "CompiledXPath",
    "XPathDifferentialError",
    "compile_expr",
    "differential_enabled",
    "set_differential",
]


class XPathDifferentialError(AssertionError):
    """Compiled and interpreted evaluation disagreed (differential mode)."""


#: Differential mode switch; armed from the environment so `make fault`
#: can turn it on for a whole pytest process.
_DIFFERENTIAL = os.environ.get("REPRO_XPATH_DIFFERENTIAL", "").strip().lower() not in (
    "",
    "0",
    "false",
)


def set_differential(enabled: bool) -> None:
    """Toggle compiled-vs-interpreted checking for every evaluation."""
    global _DIFFERENTIAL
    _DIFFERENTIAL = bool(enabled)


def differential_enabled() -> bool:
    """Whether every compiled evaluation is checked against the interpreter."""
    return _DIFFERENTIAL


def _values_agree(a: XPathValue, b: XPathValue) -> bool:
    """XPath-value equality strict enough for the differential check:
    node-sets must match element-wise, NaN agrees with NaN, and zero
    signs must coincide."""
    if is_node_set(a) or is_node_set(b):
        return is_node_set(a) and is_node_set(b) and list(a) == list(b)
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool) and a == b
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)
    return type(a) is type(b) and a == b


#: A compiled expression: Context -> XPath value.
_ExprFn = Callable[[Context], XPathValue]
#: A compiled step/fused-step: (node-set, Context) -> node-set.
_StepFn = Callable[[NodeSet, Context], NodeSet]
#: A compiled predicate filter: (axis-ordered nodes, step Context) -> kept.
_PredFn = Callable[[NodeSet, Context], NodeSet]


class _Flags(SimpleNamespace):
    """Compile-time paper-compat configuration (baked into closures)."""

    def __init__(self, lone_variable_name_test: bool, star_matches_text: bool):
        super().__init__(
            lone_variable_name_test=lone_variable_name_test,
            star_matches_text=star_matches_text,
        )


class CompiledXPath:
    """One XPath expression compiled into a closure pipeline.

    Thread-safe and reusable across documents (the lxml ``XPath``-object
    pattern).  Call it with a :class:`Context`, or use the
    :meth:`evaluate` / :meth:`select` conveniences when the compiling
    engine supplied a context factory.
    """

    __slots__ = ("path", "expr", "_fn", "_context_factory")

    def __init__(
        self,
        path: str,
        expr: Expr,
        fn: _ExprFn,
        context_factory=None,
    ) -> None:
        self.path = path
        self.expr = expr
        self._fn = fn
        self._context_factory = context_factory

    def __call__(self, ctx: Context) -> XPathValue:
        """Evaluate in an existing context (differential-checked)."""
        result = self._fn(ctx)
        if _DIFFERENTIAL:
            expected = _interpret(self.expr, ctx)
            if not _values_agree(result, expected):
                raise XPathDifferentialError(
                    f"compiled evaluation of {self.path!r} diverged: "
                    f"compiled={result!r} interpreted={expected!r}"
                )
        return result

    def evaluate(self, doc, context_node=None, variables=None) -> XPathValue:
        """Evaluate against a document, like ``XPathEngine.evaluate``."""
        if self._context_factory is None:
            raise XPathEvaluationError(
                "this compiled path has no context factory; call it with a "
                "Context or compile it through XPathEngine.compile_evaluator"
            )
        return self(self._context_factory(doc, context_node, variables))

    def select(self, doc, context_node=None, variables=None) -> NodeSet:
        """Evaluate and require a node-set (PATH-parameter semantics)."""
        value = self.evaluate(doc, context_node, variables)
        if not is_node_set(value):
            raise XPathEvaluationError(
                f"path {self.path!r} evaluated to {type(value).__name__}, "
                "expected a node-set"
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CompiledXPath({self.path!r})"


def compile_expr(
    expr: Expr,
    lone_variable_name_test: bool = False,
    star_matches_text: bool = False,
    path: Optional[str] = None,
    context_factory=None,
) -> CompiledXPath:
    """Compile a parsed expression into a :class:`CompiledXPath`.

    Args:
        expr: the parsed AST.
        lone_variable_name_test: bake in the paper-compat ``[$var]``
            reading (must match the contexts the result will run under).
        star_matches_text: bake in the paper-compat lone-``*`` reading.
        path: source string, for error messages (defaults to
            ``str(expr)``).
        context_factory: optional ``(doc, context_node, variables) ->
            Context`` enabling :meth:`CompiledXPath.evaluate`.
    """
    flags = _Flags(lone_variable_name_test, star_matches_text)
    return CompiledXPath(
        path if path is not None else str(expr),
        expr,
        _compile(expr, flags),
        context_factory,
    )


# ---------------------------------------------------------------------------
# expression compilation
# ---------------------------------------------------------------------------
def _compile(expr: Expr, flags: _Flags) -> _ExprFn:
    if isinstance(expr, LocationPath):
        pipeline = _compile_steps(expr.steps, flags)
        if expr.absolute:
            return lambda ctx: pipeline([DOCUMENT_ID], ctx)
        return lambda ctx: pipeline([ctx.node], ctx)
    if isinstance(expr, PathExpr):
        base_fn = _compile(expr.start, flags)
        pipeline = _compile_steps(expr.steps, flags)

        def run_path(ctx: Context) -> XPathValue:
            base = base_fn(ctx)
            if not is_node_set(base):
                raise XPathEvaluationError(
                    "a path may only continue from a node-set expression"
                )
            return pipeline(base, ctx)

        return run_path
    if isinstance(expr, FilterExpr):
        primary_fn = _compile(expr.primary, flags)
        pred_fns = _compile_predicates(expr.predicates, flags)

        def run_filter(ctx: Context) -> XPathValue:
            base = primary_fn(ctx)
            if not is_node_set(base):
                raise XPathEvaluationError("predicates apply only to node-sets")
            nodes: NodeSet = base
            for pred in pred_fns:
                nodes = pred(nodes, ctx)
            return nodes

        return run_filter
    if isinstance(expr, UnionExpr):
        left_fn = _compile(expr.left, flags)
        right_fn = _compile(expr.right, flags)

        def run_union(ctx: Context) -> XPathValue:
            left = left_fn(ctx)
            right = right_fn(ctx)
            if not (is_node_set(left) and is_node_set(right)):
                raise XPathEvaluationError("'|' requires node-set operands")
            return sort_document_order(list(left) + list(right))

        return run_union
    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, flags)
    if isinstance(expr, Negate):
        operand_fn = _compile(expr.operand, flags)
        from .values import to_number

        return lambda ctx: -to_number(operand_fn(ctx), ctx.doc)
    if isinstance(expr, Literal):
        value = expr.value
        return lambda ctx: value
    if isinstance(expr, NumberLiteral):
        number = expr.value
        return lambda ctx: number
    if isinstance(expr, VariableRef):
        name = expr.name

        def read_variable(ctx: Context) -> XPathValue:
            try:
                return ctx.variables[name]
            except KeyError:
                raise XPathEvaluationError(f"unbound variable ${name}") from None

        return read_variable
    if isinstance(expr, FunctionCall):
        fname = expr.name
        arg_fns = [_compile(a, flags) for a in expr.args]

        def call(ctx: Context) -> XPathValue:
            function = ctx.functions.get(fname)
            if function is None:
                raise XPathEvaluationError(f"unknown function {fname}()")
            args = [fn(ctx) for fn in arg_fns]
            try:
                return function(ctx, args)
            except XPathFunctionError as exc:
                raise XPathEvaluationError(str(exc)) from exc

        return call
    raise XPathEvaluationError(f"cannot compile {expr!r}")  # pragma: no cover


_RELATIONAL = frozenset({"<", "<=", ">", ">="})
_ARITHMETIC = frozenset({"+", "-", "*", "div", "mod"})


def _compile_binary(expr: BinaryOp, flags: _Flags) -> _ExprFn:
    op = expr.op
    left_fn = _compile(expr.left, flags)
    right_fn = _compile(expr.right, flags)
    if op == "or":
        return lambda ctx: to_boolean(left_fn(ctx)) or to_boolean(right_fn(ctx))
    if op == "and":
        return lambda ctx: to_boolean(left_fn(ctx)) and to_boolean(right_fn(ctx))
    if op in ("=", "!="):
        return lambda ctx: _compare_equality(op, left_fn(ctx), right_fn(ctx), ctx)
    if op in _RELATIONAL:
        return lambda ctx: _compare_relational(op, left_fn(ctx), right_fn(ctx), ctx)
    if op in _ARITHMETIC:
        return lambda ctx: _arithmetic(op, left_fn(ctx), right_fn(ctx), ctx)
    raise XPathEvaluationError(f"unknown operator {op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------
#: Dummy context for folding: the evaluator's scalar arithmetic and
#: comparisons consult ``ctx.doc`` only for node-set operands, which a
#: constant expression can never produce.
_FOLD_CTX = SimpleNamespace(doc=None)


def _fold_constant(expr: Expr) -> Optional[XPathValue]:
    """The value of a context-free constant expression, or None.

    Folds literals, numbers, unary minus and the binary operators over
    already-constant operands.  ``or``/``and`` fold only when the left
    operand decides the outcome (mirroring the interpreter's
    short-circuit, so a non-constant right side is never skipped when
    the interpreter would evaluate it).  Variables, functions and
    anything touching the document never fold.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, Negate):
        operand = _fold_constant(expr.operand)
        if operand is None or is_node_set(operand):
            return None
        from .values import to_number

        return -to_number(operand, None)
    if isinstance(expr, BinaryOp):
        left = _fold_constant(expr.left)
        if left is None or is_node_set(left):
            return None
        if expr.op == "or" and to_boolean(left):
            return True
        if expr.op == "and" and not to_boolean(left):
            return False
        right = _fold_constant(expr.right)
        if right is None or is_node_set(right):
            return None
        if expr.op == "or" or expr.op == "and":
            return to_boolean(right)
        if expr.op in ("=", "!="):
            return _compare_equality(expr.op, left, right, _FOLD_CTX)
        if expr.op in _RELATIONAL:
            return _compare_relational(expr.op, left, right, _FOLD_CTX)
        if expr.op in _ARITHMETIC:
            return _arithmetic(expr.op, left, right, _FOLD_CTX)
    return None


# ---------------------------------------------------------------------------
# steps
# ---------------------------------------------------------------------------
def _compile_steps(
    steps: Tuple[Step, ...], flags: _Flags
) -> Callable[[NodeSet, Context], NodeSet]:
    """Compile a step sequence into one pipeline closure.

    Adjacent ``descendant-or-self::node()`` / predicate-free
    ``child::T`` pairs (the ``//`` desugar) fuse into a single
    descendant scan.  The pipeline exits early as soon as an
    intermediate node-set is empty -- every remaining step would map
    empty to empty.
    """
    fns: List[_StepFn] = []
    index = 0
    while index < len(steps):
        step = steps[index]
        nxt = steps[index + 1] if index + 1 < len(steps) else None
        if (
            step.axis == "descendant-or-self"
            and isinstance(step.test, KindTest)
            and step.test.kind == "node"
            and not step.predicates
            and nxt is not None
            and nxt.axis == "child"
            and not nxt.predicates
        ):
            fns.append(_compile_fused_descendant(nxt.test, flags))
            index += 2
            continue
        fns.append(_compile_step(step, flags))
        index += 1

    def pipeline(start: NodeSet, ctx: Context) -> NodeSet:
        current = sort_document_order(start)
        for fn in fns:
            if not current:
                return current
            current = fn(current, ctx)
        return current

    return pipeline


def _compile_fused_descendant(test, flags: _Flags) -> _StepFn:
    """The fused ``//T`` scan: label/kind-indexed when the document
    supports it, a single strict-descendant walk otherwise.  Equivalent
    to ``descendant-or-self::node()`` followed by ``child::T`` because
    the children of a node's descendant-or-self set are exactly its
    strict (non-attribute) descendants."""
    test_fn = _compile_test("child", test, flags)

    def fused(current: NodeSet, ctx: Context) -> NodeSet:
        doc = ctx.doc
        if hasattr(doc, "nodes_with_label"):
            candidates = _indexed_candidates(ctx, test)
            if candidates is not None:
                return sort_document_order(
                    [
                        n
                        for n in candidates
                        for c in current
                        if c.is_ancestor_of(n)
                    ]
                )
        if test_fn is None:
            gathered = [n for c in current for n in doc.descendants(c)]
        else:
            gathered = [
                n
                for c in current
                for n in doc.descendants(c)
                if test_fn(ctx, n)
            ]
        return sort_document_order(gathered)

    return fused


def _parent_axis(doc, node: NodeId) -> List[NodeId]:
    parent = doc.parent(node)
    return [parent] if parent is not None else []


#: Axis -> (doc, node) -> nodes in axis order (reverse axes nearest-first).
_AXIS_FNS = {
    "child": lambda doc, n: doc.children(n),
    "descendant": lambda doc, n: list(doc.descendants(n)),
    "descendant-or-self": lambda doc, n: list(doc.descendants_or_self(n)),
    "parent": _parent_axis,
    "ancestor": lambda doc, n: list(doc.ancestors(n)),
    "ancestor-or-self": lambda doc, n: [n] + list(doc.ancestors(n)),
    "self": lambda doc, n: [n],
    "following-sibling": lambda doc, n: doc.following_siblings(n),
    "preceding-sibling": lambda doc, n: doc.preceding_siblings(n),
    "following": lambda doc, n: doc.following(n),
    "preceding": lambda doc, n: doc.preceding(n),
    "attribute": lambda doc, n: doc.attributes(n),
    "namespace": lambda doc, n: [],
}


def _compile_step(step: Step, flags: _Flags) -> _StepFn:
    axis_fn = _AXIS_FNS.get(step.axis)
    if axis_fn is None:
        raise XPathEvaluationError(f"unknown axis {step.axis!r}")
    test_fn = _compile_test(step.axis, step.test, flags)
    pred_fns = _compile_predicates(step.predicates, flags)

    def run(current: NodeSet, ctx: Context) -> NodeSet:
        gathered: List[NodeId] = []
        for context_node in current:
            candidates = axis_fn(ctx.doc, context_node)
            if test_fn is None:
                candidates = list(candidates)
            else:
                candidates = [n for n in candidates if test_fn(ctx, n)]
            for pred in pred_fns:
                if not candidates:
                    break
                candidates = pred(candidates, ctx)
            gathered.extend(candidates)
        return sort_document_order(gathered)

    return run


def _compile_test(axis: str, test, flags: _Flags) -> Optional[Callable]:
    """Compile a node test to ``(ctx, node) -> bool``; None = match-all."""
    if isinstance(test, KindTest):
        kind = test.kind
        if kind == "node":
            return None
        if kind == "text":
            return lambda ctx, n: ctx.doc.kind(n) is NodeKind.TEXT
        if kind == "comment":
            return lambda ctx, n: ctx.doc.kind(n) is NodeKind.COMMENT
        if kind == "processing-instruction":
            target = test.target
            if not target:
                return (
                    lambda ctx, n: ctx.doc.kind(n)
                    is NodeKind.PROCESSING_INSTRUCTION
                )
            return (
                lambda ctx, n: ctx.doc.kind(n) is NodeKind.PROCESSING_INSTRUCTION
                and ctx.doc.label(n) == target
            )
        raise XPathEvaluationError(f"unknown kind test {kind!r}")
    assert isinstance(test, NameTest)
    principal = NodeKind.ATTRIBUTE if axis == "attribute" else NodeKind.ELEMENT
    if test.is_wildcard:
        if flags.star_matches_text and axis != "attribute":
            star_kinds = (NodeKind.ELEMENT, NodeKind.TEXT, NodeKind.COMMENT)
            return lambda ctx, n: ctx.doc.kind(n) in star_kinds
        return lambda ctx, n: ctx.doc.kind(n) is principal
    name = test.name
    return (
        lambda ctx, n: ctx.doc.kind(n) is principal and ctx.doc.label(n) == name
    )


# ---------------------------------------------------------------------------
# predicates
# ---------------------------------------------------------------------------
def _drop_all(nodes: NodeSet, ctx: Context) -> NodeSet:
    """A constant-false predicate: filters everything, short-circuiting
    the remaining pipeline through the early-empty exit."""
    return []


#: Node kinds the paper-compat lone-``$var`` name test can match.
_NAMEABLE = (NodeKind.ELEMENT, NodeKind.ATTRIBUTE)


def _compile_predicates(
    predicates: Tuple[Expr, ...], flags: _Flags
) -> List[_PredFn]:
    fns: List[_PredFn] = []
    for predicate in predicates:
        fn = _compile_predicate(predicate, flags)
        if fn is not None:  # constant-true predicates fold away entirely
            fns.append(fn)
    return fns


def _compile_predicate(predicate: Expr, flags: _Flags) -> Optional[_PredFn]:
    """One predicate as a filter closure, or None when it folds to
    "keep everything"."""
    # Paper-compat extension: a lone $var predicate reads name() = $var.
    if flags.lone_variable_name_test and isinstance(predicate, VariableRef):
        var_fn = _compile(predicate, flags)

        def name_filter(nodes: NodeSet, ctx: Context) -> NodeSet:
            wanted = to_string(var_fn(ctx), ctx.doc)
            return [
                n
                for n in nodes
                if ctx.doc.kind(n) in _NAMEABLE and ctx.doc.label(n) == wanted
            ]

        return name_filter
    folded = _fold_constant(predicate)
    if folded is not None and not is_node_set(folded):
        if isinstance(folded, float) and not isinstance(folded, bool):
            # Positional constant: [3] keeps exactly the third node of
            # the axis-ordered candidate list; non-integral or
            # out-of-domain positions keep nothing, ever.
            if math.isfinite(folded) and folded == int(folded) and folded >= 1:
                position = int(folded)
                return lambda nodes, ctx: nodes[position - 1 : position]
            return _drop_all
        if to_boolean(folded):
            return None
        return _drop_all
    predicate_fn = _compile(predicate, flags)

    def general(nodes: NodeSet, ctx: Context) -> NodeSet:
        size = len(nodes)
        kept: List[NodeId] = []
        for index, node in enumerate(nodes, start=1):
            sub = Context(
                doc=ctx.doc,
                node=node,
                position=index,
                size=size,
                variables=ctx.variables,
                functions=ctx.functions,
                lone_variable_name_test=ctx.lone_variable_name_test,
                star_matches_text=ctx.star_matches_text,
            )
            value = predicate_fn(sub)
            if isinstance(value, float) and not isinstance(value, bool):
                if value == float(index):
                    kept.append(node)
            elif to_boolean(value):
                kept.append(node)
        return kept

    return general
