"""Disk-fault injection: a shim between durability code and the OS.

:mod:`repro.testing.faults` simulates *process* death (a kill-point
raises and the test pretends the process vanished).  This module
simulates the other half of the failure model: the process survives but
the **disk** misbehaves -- ``EIO`` on a read, ``ENOSPC`` mid-append, an
fsync the device refuses, a write that lands only partially (a short
write), or silent bit rot flipped into a file long after it was
written.

The storage and WAL layers route their file I/O through the
module-level :data:`disk` injector:

- ``disk.open(path, mode)`` instead of ``open(...)`` -- may raise on an
  armed ``open`` fault, and always returns a :class:`FaultyFile` proxy
  so faults armed *after* the handle was opened (the WAL keeps its
  segment handle open across appends) still fire on later writes.
- ``disk.fsync(handle)`` instead of ``os.fsync(handle.fileno())``.
- ``disk.wrap(fileobj, path)`` for handles born elsewhere
  (``tempfile.mkstemp`` + ``os.fdopen``).

In production nothing is armed and every hook is a single attribute
check before delegating.  Injected failures are plain ``OSError``s with
a real ``errno`` -- exactly what the OS would raise -- so the library's
classification (:func:`repro.errors.classify_disk_error`) is exercised,
not bypassed.

Fault specs
-----------

:meth:`DiskFaultInjector.arm` takes an *operation* (``"open"``,
``"read"``, ``"write"``, ``"fsync"``) and an *error name*:

=============  ========================================================
``"eio"``      ``OSError(EIO)`` -- the device failed the operation
``"enospc"``   ``OSError(ENOSPC)`` -- the volume is out of space
``"short"``    (writes only) the first half of the buffer reaches the
               file, then ``OSError(ENOSPC)`` -- a torn write that
               leaves real partial bytes on disk
=============  ========================================================

plus ``after=N`` (let N calls through first) and ``match=substr``
(only paths containing the substring are eligible, so a test can hit
the WAL but not the checkpoint, or vice versa).

Bit rot is physical, not hooked: :func:`flip_bit` flips one bit of an
existing file in place, modelling corruption that happened at rest.

Example::

    from repro.testing.diskfaults import disk, flip_bit

    disk.arm("write", "enospc", match=".wal")
    with pytest.raises(WalWriteError) as err:
        db.admin_update(script)          # the append hits ENOSPC
    assert isinstance(err.value.disk, DiskFullError)
    disk.reset()

    flip_bit(segment_path, offset=120)   # rot a record at rest
"""

from __future__ import annotations

import errno
import io
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple

__all__ = [
    "DISK_OPS",
    "DISK_ERRORS",
    "DiskFaultInjector",
    "FaultyFile",
    "disk",
    "flip_bit",
]

#: The I/O operations the shim can fail.
DISK_OPS = ("open", "read", "write", "fsync")

#: The error names :meth:`DiskFaultInjector.arm` accepts.
DISK_ERRORS = ("eio", "enospc", "short")

_ERRNO = {"eio": errno.EIO, "enospc": errno.ENOSPC, "short": errno.ENOSPC}


@dataclass
class _ArmedDiskFault:
    """One armed disk fault: fire on the (``after`` + 1)-th eligible call."""

    op: str
    error: str
    remaining: int
    match: str


class DiskFaultInjector:
    """A registry of armed disk faults consulted by the I/O hooks.

    Thread-safe; the module-level :data:`disk` instance is what the
    library routes through.  Arming is one-shot per operation (like
    kill-points): a fault fires once, then disarms itself, so a soak
    step never leaks its fault into the next.

    Attributes:
        injected: every fault that actually fired since the last
            :meth:`reset`, as ``(op, error, path)`` tuples.
    """

    def __init__(self) -> None:
        self._armed: Dict[str, _ArmedDiskFault] = {}
        self._lock = threading.Lock()
        self.injected: List[Tuple[str, str, str]] = []

    # -- arming -----------------------------------------------------------
    def arm(
        self,
        op: str,
        error: str = "eio",
        *,
        after: int = 0,
        match: str = "",
    ) -> None:
        """Make the next eligible ``op`` call fail with ``error``.

        Args:
            op: one of :data:`DISK_OPS`.
            error: one of :data:`DISK_ERRORS` (``"short"`` is only
                meaningful for ``"write"``).
            after: number of eligible calls to let through first.
            match: only paths containing this substring are eligible
                (empty = every path).
        """
        if op not in DISK_OPS:
            raise ValueError(f"unknown disk op {op!r}; known: {', '.join(DISK_OPS)}")
        if error not in DISK_ERRORS:
            raise ValueError(
                f"unknown disk error {error!r}; known: {', '.join(DISK_ERRORS)}"
            )
        if error == "short" and op != "write":
            raise ValueError("a short write only makes sense for op='write'")
        if after < 0:
            raise ValueError("after must be >= 0")
        with self._lock:
            self._armed[op] = _ArmedDiskFault(
                op=op, error=error, remaining=after, match=match
            )

    def disarm(self, op: Optional[str] = None) -> None:
        """Disarm one operation, or all of them when ``op`` is None."""
        with self._lock:
            if op is None:
                self._armed.clear()
            else:
                self._armed.pop(op, None)

    def is_armed(self, op: str) -> bool:
        """True if ``op`` currently has a fault armed."""
        with self._lock:
            return op in self._armed

    def reset(self) -> None:
        """Disarm everything and clear the injection history."""
        with self._lock:
            self._armed.clear()
            self.injected.clear()

    @contextmanager
    def armed(
        self, op: str, error: str = "eio", *, after: int = 0, match: str = ""
    ) -> Iterator["DiskFaultInjector"]:
        """Arm a fault for the duration of a ``with`` block."""
        self.arm(op, error, after=after, match=match)
        try:
            yield self
        finally:
            self.disarm(op)

    # -- consultation -----------------------------------------------------
    def _take(self, op: str, path: str) -> Optional[_ArmedDiskFault]:
        """Consume an armed fault for ``op`` at ``path``, if eligible."""
        if not self._armed:  # hot path: nothing armed anywhere
            return None
        with self._lock:
            armed = self._armed.get(op)
            if armed is None or armed.match not in path:
                return None
            if armed.remaining > 0:
                armed.remaining -= 1
                return None
            del self._armed[op]  # one-shot: fire once, then disarm
            self.injected.append((op, armed.error, path))
            return armed

    def _raise(self, armed: _ArmedDiskFault, path: str) -> None:
        raise OSError(
            _ERRNO[armed.error],
            f"injected disk fault ({armed.op}/{armed.error})",
            path,
        )

    # -- the I/O hooks ----------------------------------------------------
    def open(self, path: str, mode: str = "rb", **kwargs: Any) -> "FaultyFile":
        """``open()`` with fault consultation; always returns a proxy."""
        armed = self._take("open", str(path))
        if armed is not None:
            self._raise(armed, str(path))
        return FaultyFile(io.open(path, mode, **kwargs), str(path), self)

    def wrap(self, handle: IO[Any], path: str) -> "FaultyFile":
        """Wrap an already-open handle (mkstemp et al.) in the proxy."""
        return FaultyFile(handle, str(path), self)

    def fsync(self, handle: IO[Any]) -> None:
        """``os.fsync(handle.fileno())`` with fault consultation."""
        path = getattr(handle, "name", "")
        if isinstance(path, int):  # anonymous fd from fdopen
            path = ""
        armed = self._take("fsync", str(path))
        if armed is not None:
            self._raise(armed, str(path))
        os.fsync(handle.fileno())


class FaultyFile:
    """A file proxy that consults the injector on reads and writes.

    Everything not intercepted delegates to the wrapped handle, so the
    proxy is a drop-in file object (``fileno``, ``seek``, ``truncate``,
    context-manager protocol, ...).  A ``"short"`` write fault writes
    the first half of the buffer for real before raising -- the torn
    bytes land on disk exactly as a dying device would leave them.
    """

    def __init__(
        self, handle: IO[Any], path: str, injector: DiskFaultInjector
    ) -> None:
        self._handle = handle
        self._path = path
        self._injector = injector

    @property
    def name(self) -> str:
        # mkstemp handles report their fd as .name; the proxy always
        # knows the real path, which is what fault matching needs.
        return self._path

    def read(self, size: int = -1) -> Any:
        """Delegate to the wrapped handle after consulting ``read`` faults."""
        armed = self._injector._take("read", self._path)
        if armed is not None:
            self._injector._raise(armed, self._path)
        return self._handle.read(size)

    def write(self, data: Any) -> int:
        """Delegate to the wrapped handle after consulting ``write``
        faults; a ``"short"`` fault writes half the buffer first."""
        armed = self._injector._take("write", self._path)
        if armed is not None:
            if armed.error == "short" and data:
                self._handle.write(data[: max(1, len(data) // 2)])
                self._handle.flush()
            self._injector._raise(armed, self._path)
        return self._handle.write(data)

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self._handle.close()

    def __iter__(self) -> Iterator[Any]:
        return iter(self._handle)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._handle, name)


#: The injector the storage and WAL layers route their I/O through.
disk = DiskFaultInjector()


def flip_bit(path: str, offset: int, bit: int = 0) -> int:
    """Flip one bit of ``path`` in place -- silent corruption at rest.

    Args:
        path: the file to damage.
        offset: byte offset to flip (negative counts from the end).
        bit: which bit of the byte (0 = least significant).

    Returns:
        The byte offset actually flipped (always non-negative).

    Raises:
        ValueError: when the offset is outside the file.
    """
    size = os.path.getsize(path)
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside {path} ({size} bytes)")
    with io.open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([original ^ (1 << bit)]))
    return offset
