"""XPath 1.0 evaluator over :class:`~repro.xmltree.document.XMLDocument`.

Evaluation follows the spec's data model: a context holds a node, a
proximity position and a size; location steps map each context node to
an axis sequence filtered by a node test and predicates.  Results of
node-set expressions are in document order without duplicates.

One deliberate extension (off by default, enabled by the security layer)
mirrors the paper's policy syntax: rule 5 of the example policy writes
``/patients/descendant-or-self::*[$USER]`` with the intent "elements
*named* by the session user's login".  Under strict XPath 1.0 semantics
``[$USER]`` is ``boolean(string)`` -- true for any non-empty login --
which cannot be what the paper means.  With
``lone_variable_name_test=True`` a predicate consisting of exactly one
variable reference is evaluated as ``name() = $var``, matching the
paper's reading.  DESIGN.md records this as a documented interpretation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set

from ..xmltree.document import XMLDocument
from ..xmltree.labels import NodeId
from ..xmltree.node import NodeKind
from .ast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    Negate,
    NodeTest,
    NumberLiteral,
    PathExpr,
    REVERSE_AXES,
    Step,
    UnionExpr,
    VariableRef,
)
from .functions import CORE_FUNCTIONS, XPathFunction, XPathFunctionError
from .values import (
    NodeSet,
    XPathValue,
    is_node_set,
    sort_document_order,
    to_boolean,
    to_number,
    to_string,
)

__all__ = ["Context", "XPathEvaluationError", "evaluate"]


class XPathEvaluationError(ValueError):
    """Type errors and unknown names raised during evaluation."""


@dataclass
class Context:
    """One XPath evaluation context.

    Attributes:
        doc: the document being queried.
        node: the context node.
        position: 1-based proximity position.
        size: context size.
        variables: variable bindings (``USER`` etc.); values are XPath
            values.
        functions: the function library in effect.
        lone_variable_name_test: the paper-compat predicate extension
            (see module docstring).
        star_matches_text: paper-compat wildcard semantics.  The paper's
            example policy writes ``//*`` for "the whole document" and
            ``//diagnosis/*`` for "the content of diagnosis elements" --
            its printed views (section 4.4.1) show text nodes being
            granted/denied by these rules, so the paper's Prolog XPath
            clearly lets ``*`` match text nodes.  Standard XPath 1.0
            restricts ``*`` to the principal node type (elements).  With
            this flag a lone ``*`` name test also matches text and
            comment nodes; attribute-axis behaviour is unchanged.
    """

    doc: XMLDocument
    node: NodeId
    position: int = 1
    size: int = 1
    variables: Mapping[str, XPathValue] = field(default_factory=dict)
    functions: Mapping[str, XPathFunction] = field(default_factory=lambda: CORE_FUNCTIONS)
    lone_variable_name_test: bool = False
    star_matches_text: bool = False

    def at(self, node: NodeId, position: int, size: int) -> "Context":
        """A sibling context at another node/position/size."""
        return replace(self, node=node, position=position, size=size)


def evaluate(expr: Expr, ctx: Context) -> XPathValue:
    """Evaluate an XPath AST in a context, returning an XPath value."""
    if isinstance(expr, LocationPath):
        start = [NodeId(())] if expr.absolute else [ctx.node]
        return _eval_steps(start, expr.steps, ctx)
    if isinstance(expr, PathExpr):
        base = evaluate(expr.start, ctx)
        if not is_node_set(base):
            raise XPathEvaluationError(
                "a path may only continue from a node-set expression"
            )
        return _eval_steps(base, expr.steps, ctx)
    if isinstance(expr, FilterExpr):
        base = evaluate(expr.primary, ctx)
        if not is_node_set(base):
            raise XPathEvaluationError("predicates apply only to node-sets")
        nodes: NodeSet = base
        for predicate in expr.predicates:
            nodes = _filter_predicate(nodes, predicate, ctx, reverse=False)
        return nodes
    if isinstance(expr, UnionExpr):
        left = evaluate(expr.left, ctx)
        right = evaluate(expr.right, ctx)
        if not (is_node_set(left) and is_node_set(right)):
            raise XPathEvaluationError("'|' requires node-set operands")
        return sort_document_order(list(left) + list(right))
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, ctx)
    if isinstance(expr, Negate):
        return -to_number(evaluate(expr.operand, ctx), ctx.doc)
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, VariableRef):
        try:
            return ctx.variables[expr.name]
        except KeyError:
            raise XPathEvaluationError(f"unbound variable ${expr.name}") from None
    if isinstance(expr, FunctionCall):
        function = ctx.functions.get(expr.name)
        if function is None:
            raise XPathEvaluationError(f"unknown function {expr.name}()")
        args = [evaluate(a, ctx) for a in expr.args]
        try:
            return function(ctx, args)
        except XPathFunctionError as exc:
            raise XPathEvaluationError(str(exc)) from exc
    raise XPathEvaluationError(f"cannot evaluate {expr!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# location steps
# ---------------------------------------------------------------------------
def _eval_steps(start: Sequence[NodeId], steps: Sequence[Step], ctx: Context) -> NodeSet:
    current: NodeSet = sort_document_order(start)
    index = 0
    while index < len(steps):
        step = steps[index]
        # Fast path for the ``//name`` desugar pair: a bare
        # descendant-or-self::node() step followed by a predicate-free
        # child::NAME step selects exactly the NAME-labelled element
        # descendants of each context node -- answerable from the
        # document's label index without walking the tree.
        nxt = steps[index + 1] if index + 1 < len(steps) else None
        if (
            step.axis == "descendant-or-self"
            and isinstance(step.test, KindTest)
            and step.test.kind == "node"
            and not step.predicates
            and nxt is not None
            and nxt.axis == "child"
            and not nxt.predicates
            and hasattr(ctx.doc, "nodes_with_label")
        ):
            candidates = _indexed_candidates(ctx, nxt.test)
            if candidates is not None:
                gathered = [
                    n
                    for n in candidates
                    for c in current
                    if c.is_ancestor_of(n)
                ]
                current = sort_document_order(gathered)
                index += 2
                continue
        current = _eval_one_step(current, step, ctx)
        index += 1
    return current


def _indexed_candidates(ctx: Context, test: NodeTest) -> Optional[Set[NodeId]]:
    """Index-answerable candidate set for a ``//``-pair's child test.

    Returns None when the test cannot be answered from the document's
    label/kind indexes (then the generic evaluator runs).
    """
    doc = ctx.doc
    if isinstance(test, NameTest):
        if not test.is_wildcard:
            return doc.nodes_with_label(test.name)
        candidates = set(doc.nodes_with_kind(NodeKind.ELEMENT))
        if ctx.star_matches_text:
            candidates |= doc.nodes_with_kind(NodeKind.TEXT)
            candidates |= doc.nodes_with_kind(NodeKind.COMMENT)
        return candidates
    assert isinstance(test, KindTest)
    if test.kind == "text":
        return set(doc.nodes_with_kind(NodeKind.TEXT))
    if test.kind == "comment":
        return set(doc.nodes_with_kind(NodeKind.COMMENT))
    if test.kind == "node":
        out: Set[NodeId] = set()
        for kind in (
            NodeKind.ELEMENT,
            NodeKind.TEXT,
            NodeKind.COMMENT,
            NodeKind.PROCESSING_INSTRUCTION,
        ):
            out |= doc.nodes_with_kind(kind)
        return out
    return None  # processing-instruction('target') etc.: generic path


def _eval_one_step(current: NodeSet, step: Step, ctx: Context) -> NodeSet:
    gathered: List[NodeId] = []
    reverse = step.axis in REVERSE_AXES
    for context_node in current:
        candidates = _axis_nodes(ctx.doc, step.axis, context_node)
        candidates = [
            n for n in candidates if _matches_test(ctx, step.axis, step.test, n)
        ]
        for predicate in step.predicates:
            candidates = _filter_predicate(candidates, predicate, ctx, reverse)
        gathered.extend(candidates)
    return sort_document_order(gathered)


def _axis_nodes(doc: XMLDocument, axis: str, node: NodeId) -> List[NodeId]:
    """The axis sequence in *axis order* (reverse axes nearest-first)."""
    if axis == "child":
        return doc.children(node)
    if axis == "descendant":
        return list(doc.descendants(node))
    if axis == "descendant-or-self":
        return list(doc.descendants_or_self(node))
    if axis == "parent":
        parent = doc.parent(node)
        return [parent] if parent is not None else []
    if axis == "ancestor":
        return list(doc.ancestors(node))
    if axis == "ancestor-or-self":
        return [node] + list(doc.ancestors(node))
    if axis == "self":
        return [node]
    if axis == "following-sibling":
        return doc.following_siblings(node)
    if axis == "preceding-sibling":
        return doc.preceding_siblings(node)
    if axis == "following":
        return doc.following(node)
    if axis == "preceding":
        return doc.preceding(node)
    if axis == "attribute":
        return doc.attributes(node)
    if axis == "namespace":
        return []
    raise XPathEvaluationError(f"unknown axis {axis!r}")  # pragma: no cover


def _matches_test(ctx: Context, axis: str, test: NodeTest, node: NodeId) -> bool:
    doc = ctx.doc
    kind = doc.kind(node)
    if isinstance(test, KindTest):
        if test.kind == "node":
            return True
        if test.kind == "text":
            return kind is NodeKind.TEXT
        if test.kind == "comment":
            return kind is NodeKind.COMMENT
        if test.kind == "processing-instruction":
            if kind is not NodeKind.PROCESSING_INSTRUCTION:
                return False
            return not test.target or doc.label(node) == test.target
        raise XPathEvaluationError(f"unknown kind test {test.kind!r}")
    assert isinstance(test, NameTest)
    # A name test selects nodes of the axis's principal node type only.
    principal = NodeKind.ATTRIBUTE if axis == "attribute" else NodeKind.ELEMENT
    if kind is not principal:
        # Paper-compat: '*' additionally matches text/comment nodes.
        if (
            ctx.star_matches_text
            and test.is_wildcard
            and axis != "attribute"
            and kind in (NodeKind.TEXT, NodeKind.COMMENT)
        ):
            return True
        return False
    return test.is_wildcard or doc.label(node) == test.name


def _filter_predicate(
    nodes: List[NodeId], predicate: Expr, ctx: Context, reverse: bool
) -> List[NodeId]:
    """Apply one predicate with correct proximity positions.

    ``nodes`` must be in axis order; for reverse axes the proximity
    position counts from the context node outward, which is exactly the
    list order produced by :func:`_axis_nodes`.
    """
    # Paper-compat extension: a lone $var predicate reads name() = $var.
    if ctx.lone_variable_name_test and isinstance(predicate, VariableRef):
        wanted = to_string(evaluate(predicate, ctx), ctx.doc)
        return [
            n
            for n in nodes
            if ctx.doc.kind(n) in (NodeKind.ELEMENT, NodeKind.ATTRIBUTE)
            and ctx.doc.label(n) == wanted
        ]
    size = len(nodes)
    kept: List[NodeId] = []
    for index, node in enumerate(nodes, start=1):
        sub = ctx.at(node, index, size)
        value = evaluate(predicate, sub)
        if isinstance(value, float) and not isinstance(value, bool):
            selected = value == float(index)
        else:
            selected = to_boolean(value)
        if selected:
            kept.append(node)
    if reverse:
        # Keep axis order for any later predicate of the same step.
        return kept
    return kept


# ---------------------------------------------------------------------------
# binary operators
# ---------------------------------------------------------------------------
_RELATIONAL = {"<", "<=", ">", ">="}


def _eval_binary(expr: BinaryOp, ctx: Context) -> XPathValue:
    op = expr.op
    if op == "or":
        return to_boolean(evaluate(expr.left, ctx)) or to_boolean(
            evaluate(expr.right, ctx)
        )
    if op == "and":
        return to_boolean(evaluate(expr.left, ctx)) and to_boolean(
            evaluate(expr.right, ctx)
        )
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if op in ("=", "!="):
        return _compare_equality(op, left, right, ctx)
    if op in _RELATIONAL:
        return _compare_relational(op, left, right, ctx)
    return _arithmetic(op, left, right, ctx)


def _node_strings(nodes: NodeSet, ctx: Context) -> List[str]:
    return [ctx.doc.string_value(n) for n in nodes]


def _compare_equality(op: str, left: XPathValue, right: XPathValue, ctx: Context) -> bool:
    """XPath = and != (spec 3.4): existential over node-sets."""
    want_equal = op == "="

    if is_node_set(left) and is_node_set(right):
        lefts = _node_strings(left, ctx)
        rights = set(_node_strings(right, ctx))
        if want_equal:
            return any(s in rights for s in lefts)
        return any(s != t for s in lefts for t in rights)
    if is_node_set(left) or is_node_set(right):
        nodes, other = (left, right) if is_node_set(left) else (right, left)
        if isinstance(other, bool):
            result = to_boolean(nodes) == other
            return result if want_equal else not result
        if isinstance(other, float):
            return any(
                (to_number(s, ctx.doc) == other) == want_equal
                for s in _node_strings(nodes, ctx)
            )
        return any((s == other) == want_equal for s in _node_strings(nodes, ctx))
    if isinstance(left, bool) or isinstance(right, bool):
        result = to_boolean(left) == to_boolean(right)
    elif isinstance(left, float) or isinstance(right, float):
        result = to_number(left, ctx.doc) == to_number(right, ctx.doc)
    else:
        result = left == right
    return result if want_equal else not result


_REL_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compare_relational(op: str, left: XPathValue, right: XPathValue, ctx: Context) -> bool:
    compare = _REL_OPS[op]
    if is_node_set(left) and is_node_set(right):
        lefts = [to_number(s, ctx.doc) for s in _node_strings(left, ctx)]
        rights = [to_number(s, ctx.doc) for s in _node_strings(right, ctx)]
        return any(compare(a, b) for a in lefts for b in rights)
    if is_node_set(left):
        # Spec 3.4: against a boolean the node-set is converted with
        # boolean() and the two booleans compared as numbers -- no
        # per-node existential.
        if isinstance(right, bool):
            return compare(to_number(to_boolean(left), ctx.doc), to_number(right, ctx.doc))
        bound = to_number(right, ctx.doc)
        return any(
            compare(to_number(s, ctx.doc), bound) for s in _node_strings(left, ctx)
        )
    if is_node_set(right):
        if isinstance(left, bool):
            return compare(to_number(left, ctx.doc), to_number(to_boolean(right), ctx.doc))
        bound = to_number(left, ctx.doc)
        return any(
            compare(bound, to_number(s, ctx.doc)) for s in _node_strings(right, ctx)
        )
    return compare(to_number(left, ctx.doc), to_number(right, ctx.doc))


def _arithmetic(op: str, left: XPathValue, right: XPathValue, ctx: Context) -> float:
    a = to_number(left, ctx.doc)
    b = to_number(right, ctx.doc)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "div":
        if b == 0:
            if a == 0 or math.isnan(a):
                return math.nan
            # IEEE-754: the sign of x/±0 is the XOR of the operand
            # signs, so 1 div -0.0 is -inf (b == 0 is true for -0.0
            # but its sign still counts).
            return math.copysign(
                math.inf, math.copysign(1.0, a) * math.copysign(1.0, b)
            )
        return a / b
    if op == "mod":
        # XPath mod takes the sign of the dividend (like fmod, not %).
        if b == 0 or math.isnan(a) or math.isnan(b) or math.isinf(a):
            return math.nan
        return math.fmod(a, b)
    raise XPathEvaluationError(f"unknown operator {op!r}")  # pragma: no cover
