"""Supervised failover: detection, promotion, fencing, exactly-once.

The unit half of the failover story (the seeded soak lives in
test_failover_chaos.py): the failure detector's signals, the promotion
sequence end to end, the epoch rules that make a deposed primary
harmless, the dedup ledger surviving the switch, and the stats
surfaces ISSUE 9 adds.
"""

import threading

import pytest

from repro.errors import (
    FailoverError,
    ReplicaDiverged,
    StaleEpochError,
)
from repro.replication import FailoverSupervisor, Replica, ReplicationRouter
from repro.serving import DatabaseServer
from repro.testing.faults import InjectedFault, inject, run_threads
from repro.wal import WriteAheadLog

from .conftest import append_script, editors_database, state_bytes

pytestmark = pytest.mark.failover


@pytest.fixture
def cluster(tmp_path):
    """Primary server + two replicas + router + supervisor."""
    wal_dir = str(tmp_path / "primary.wal")
    db = editors_database()
    wal = WriteAheadLog(wal_dir, fsync="always")
    db.attach_wal(wal)
    wal.checkpoint(db)
    server = DatabaseServer(db)
    replicas = [
        Replica(wal_dir, replica_id=f"r{i}") for i in range(2)
    ]
    router = ReplicationRouter(server, replicas, max_wait=0.2)
    supervisor = FailoverSupervisor(
        router,
        promote_dir=str(tmp_path / "promoted"),
        heartbeat_timeout_ms=0.0,
    )
    return server, replicas, router, supervisor, wal_dir


def poison_wal(server):
    """Tear one append mid-record: the WAL writer is poisoned, which
    is exactly the degraded primary the detector must flag."""
    with inject("wal-mid-record"):
        with pytest.raises(Exception):
            server.execute("w1", append_script("torn"))


class TestDetection:
    def test_healthy_primary_probes_healthy(self, cluster):
        _, _, _, supervisor, _ = cluster
        probe = supervisor.heartbeat()
        assert probe["healthy"] and probe["reasons"] == []
        assert not supervisor.primary_failed

    def test_poisoned_wal_is_a_failure_signal(self, cluster):
        server, _, _, supervisor, _ = cluster
        poison_wal(server)
        probe = supervisor.heartbeat()
        assert not probe["healthy"]
        assert any("wal-poisoned" in r for r in probe["reasons"])
        assert supervisor.primary_failed  # grace window is 0 here

    def test_fenced_primary_is_a_failure_signal(self, cluster):
        server, _, _, supervisor, _ = cluster
        server.fence(7)
        probe = supervisor.heartbeat()
        assert any("fenced" in r for r in probe["reasons"])

    def test_grace_window_absorbs_a_blip(self, tmp_path, cluster):
        server, replicas, router, _, _ = cluster
        now = [0.0]
        supervisor = FailoverSupervisor(
            router,
            promote_dir=str(tmp_path / "p2"),
            heartbeat_timeout_ms=1000.0,
            clock=lambda: now[0],
        )
        supervisor.heartbeat()  # healthy baseline at t=0
        poison_wal(server)
        now[0] = 0.5
        assert not supervisor.heartbeat()["healthy"]
        assert not supervisor.primary_failed  # 500ms < the 1s window
        now[0] = 1.5
        supervisor.heartbeat()
        assert supervisor.primary_failed

    def test_healthy_primary_refuses_unforced_promotion(self, cluster):
        _, _, _, supervisor, _ = cluster
        with pytest.raises(FailoverError) as info:
            supervisor.promote()
        assert info.value.reason == "primary-healthy"


class TestPromotion:
    def commit(self, router, label, **kwargs):
        return router.execute("w1", append_script(label), **kwargs)

    def test_promotion_end_to_end(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        for label in ("a", "b", "c"):
            self.commit(router, label)
        poison_wal(server)
        supervisor.heartbeat()
        assert supervisor.primary_failed
        promoted = supervisor.promote()
        # The router swapped primaries under a strictly higher epoch.
        assert router.primary is promoted
        assert router.epoch == 1 and promoted.epoch == 1
        assert router.stats()["promotions"] == 1
        # Nothing acknowledged was lost: the promoted state holds all
        # three commits, and new writes land on the new primary.
        assert promoted.stats()["promotions"] == 1
        self.commit(router, "after")
        assert "<after>" in promoted.read_xml("w1")
        assert "<c>" in promoted.read_xml("w1")

    def test_candidate_is_the_most_caught_up_replica(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        self.commit(router, "a")
        replicas[1].sync()  # r1 is ahead of r0 at selection time
        promoted = supervisor.promote(force=True)
        assert promoted.database is replicas[1].database
        assert replicas[1] not in router.replicas

    def test_survivors_retarget_onto_the_new_log(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        for label in ("a", "b"):
            self.commit(router, label)
        replicas[1].sync()
        promoted = supervisor.promote(force=True)
        survivor = router.replicas[0]
        assert survivor.directory == promoted.database.wal.directory
        self.commit(router, "fresh")
        survivor.sync()
        assert state_bytes(survivor.database) == state_bytes(
            promoted.database
        )
        assert survivor.stats()["retargets"] == 1

    def test_deposed_primary_is_fenced_and_never_acks(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        self.commit(router, "a")
        supervisor.promote(force=True)
        assert server.fenced and server.fenced_at == 1
        before = server.database.version
        with pytest.raises(StaleEpochError):
            server.execute("w1", append_script("zombie"))
        assert server.database.version == before
        assert server.stats()["fenced_writes"] == 1
        # Through the router the refusal is counted there too.
        with pytest.raises(StaleEpochError):
            router._primary = server  # a stale reference resurfacing
            router.execute("w1", append_script("zombie"))
        assert router.stats()["fenced_writes"] >= 1

    def test_no_eligible_replica_raises(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        for replica in list(router.replicas):
            router.remove_replica(replica)
        with pytest.raises(FailoverError) as info:
            supervisor.promote(force=True)
        assert info.value.reason == "no-candidate"

    def test_promote_kill_points_leave_the_cluster_unchanged(
        self, cluster
    ):
        server, replicas, router, supervisor, _ = cluster
        self.commit(router, "a")
        for point in ("supervisor-before-promote", "promote-mid-drain"):
            with inject(point):
                with pytest.raises(InjectedFault):
                    supervisor.promote(force=True)
            assert router.primary is server
            assert router.epoch == 0
            assert len(router.replicas) == 2
        # The retried promotion (same call, nothing armed) succeeds.
        promoted = supervisor.promote(force=True)
        assert router.primary is promoted and router.epoch == 1

    def test_demote_rejoins_the_old_primary_as_a_follower(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        self.commit(router, "a")
        promoted = supervisor.promote(force=True)
        follower = supervisor.demote(server)
        assert server.fenced
        assert follower in router.replicas
        self.commit(router, "b")
        follower.sync()
        assert state_bytes(follower.database) == state_bytes(
            promoted.database
        )

    def test_second_promotion_keeps_raising_the_epoch(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        self.commit(router, "a")
        first = supervisor.promote(force=True)
        assert router.epoch == 1
        self.commit(router, "b")
        router.replicas[0].sync()
        second = supervisor.promote(force=True)
        assert router.epoch == 2 and second.epoch == 2
        assert first.fenced


class TestExactlyOnce:
    def test_retry_under_one_key_applies_once(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        first = router.execute(
            "w1", append_script("once"), idempotency_key="k-1"
        )
        assert first.fully_applied
        version = server.database.version
        replay = router.execute(
            "w1", append_script("once"), idempotency_key="k-1"
        )
        assert replay.deduped and replay.version == version
        assert server.database.version == version
        assert server.stats()["dedup_hits"] == 1

    def test_dedup_ledger_survives_promotion(self, cluster):
        """The unknown-outcome hole, closed: a write the old primary
        acknowledged is re-sent (same key) to the promoted primary and
        answered from the rebuilt ledger, not applied again."""
        server, replicas, router, supervisor, _ = cluster
        acked = router.execute(
            "w1", append_script("keyed"), idempotency_key="k-9"
        )
        assert acked.fully_applied
        promoted = supervisor.promote(force=True)
        state = state_bytes(promoted.database)
        replay = router.execute(
            "w1", append_script("keyed"), idempotency_key="k-9"
        )
        assert replay.deduped
        assert replay.version == acked.version if hasattr(
            acked, "version"
        ) else True
        assert state_bytes(promoted.database) == state
        assert promoted.stats()["dedup_hits"] == 1

    def test_different_keys_apply_independently(self, cluster):
        server, _, router, _, _ = cluster
        router.execute("w1", append_script("x"), idempotency_key="a")
        router.execute("w1", append_script("x"), idempotency_key="b")
        assert server.read_xml("w1").count("<x>") == 2


class TestStatsSurfaces:
    """Satellite 1: the new stats fields, deep-copied and thread-safe."""

    def test_router_stats_fields(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        stats = router.stats()
        assert stats["epoch"] == 0
        assert stats["promotions"] == 0
        assert stats["fenced_writes"] == 0
        assert stats["primary_epoch"] == 0
        assert stats["primary_fenced"] is False
        for member in stats["replicas"]:
            assert member["last_heartbeat_ms"] >= 0.0
            assert member["epoch"] == 0
            assert "fenced_records" in member

    def test_server_stats_fields(self, cluster):
        server, _, _, _, _ = cluster
        stats = server.stats()
        assert stats["epoch"] == 0
        assert stats["fenced"] is False
        assert stats["fenced_at"] is None
        assert stats["dedup_size"] == 0
        assert stats["dedup_capacity"] == 1024

    def test_stats_snapshots_are_deep_copies(self, cluster):
        server, replicas, router, _, _ = cluster
        snapshot = router.stats()
        snapshot["replicas"][0]["records_applied"] = 10**9
        snapshot["epoch"] = 42
        fresh = router.stats()
        assert fresh["epoch"] == 0
        assert fresh["replicas"][0]["records_applied"] < 10**9

    def test_stats_are_thread_safe_under_write_load(self, cluster):
        server, replicas, router, supervisor, _ = cluster
        stop = threading.Event()
        seen = []

        def worker(i):
            if i == 0:
                for n in range(10):
                    router.execute("w1", append_script(f"t{n}"))
                stop.set()
            else:
                while not stop.is_set():
                    seen.append(router.stats()["epoch"])
                    supervisor.heartbeat()

        errors = run_threads(worker, 3)
        assert not any(errors)
        assert all(epoch == 0 for epoch in seen)

    def test_supervisor_stats(self, cluster):
        server, _, router, supervisor, _ = cluster
        supervisor.heartbeat()
        stats = supervisor.stats()
        assert stats["probes"] == 1
        assert stats["promotions"] == 0
        assert stats["epoch"] == 0
        assert stats["last_reasons"] == []
        supervisor.promote(force=True)
        assert supervisor.stats()["promotions"] == 1


class TestReplicaFencing:
    def test_stale_epoch_record_quarantines_the_replica(self, tmp_path):
        """A replica that has seen epoch N refuses any lower-epoch
        record -- the shipped-log face of fencing."""
        wal_dir = str(tmp_path / "p.wal")
        db = editors_database()
        wal = WriteAheadLog(wal_dir)
        db.attach_wal(wal)
        wal.checkpoint(db)
        replica = Replica(wal_dir)
        # Smuggle an epoch regression into the log (an epoch-0 log
        # stamps nothing, so the payload's own fields survive).
        wal.append({"kind": "update", "epoch": 2, "user": "w1",
                    "script": append_script("a"),
                    "version": db.version + 1})
        wal.append({"kind": "update", "epoch": 1, "user": "w1",
                    "script": append_script("b"),
                    "version": db.version + 2})
        with pytest.raises(ReplicaDiverged):
            replica.sync()
        assert replica.quarantined
        assert replica.stats()["fenced_records"] == 1
        assert replica.epoch == 2
