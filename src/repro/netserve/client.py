"""Clients for the framed network protocol.

Two shapes, one wire format:

- :class:`NetClient` -- a plain blocking socket client.  One
  request/response at a time; what the CLI, tests and the threaded
  stress harness use.
- :class:`AsyncNetClient` -- the asyncio twin, for callers that hold
  thousands of concurrent connections in one process (the E25
  benchmark drives 10k connections from a single event loop).

Both relay server-side failures as
:class:`~repro.errors.RemoteError` with the server's exception class
name in :attr:`~repro.errors.RemoteError.kind` -- branch on it the way
in-process callers branch on exception class::

    with NetClient(host, port) as client:
        client.open_session("laporte")
        try:
            client.execute(script)
        except RemoteError as exc:
            if exc.kind == "AccessDenied":
                ...

A torn or refused connection raises
:class:`~repro.errors.NetworkError`: any request in flight at that
moment has an *unknown* outcome (the server may have committed before
the ack was lost), exactly like a process crash between commit and
reply.

The unknown-outcome hole is what ``idempotency_key`` closes: re-send
the *same* script under the *same* key and the primary's exactly-once
ledger answers repeats with the original acknowledgement instead of
applying twice -- across retries, reconnects, and even a failover to a
freshly promoted primary.  :func:`execute_with_failover` packages the
loop: one key, a ring of candidate endpoints, re-sent until somebody
currently holding the primary role acknowledges.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, List, Optional

from ..errors import NetworkError, RemoteError
from .framing import DEFAULT_MAX_FRAME, FrameDecoder, encode_frame
from .protocol import request, unwrap_response

__all__ = ["AsyncNetClient", "NetClient", "execute_with_failover"]

#: Error kinds worth re-sending to another endpoint: the request never
#: committed *here*, but another node may hold (or take) the primary
#: role.  Anything else is the operation's own verdict -- relayed.
_FAILOVER_KINDS = frozenset(
    {"StaleEpochError", "CircuitOpenError", "WalWriteError"}
)


class NetClient:
    """A blocking client for one connection to a :class:`NetServer`.

    Args:
        host / port: the listener (as printed by ``repro serve``).
        timeout: socket timeout in seconds for connect and each
            receive; None blocks indefinitely.
        max_frame: per-frame byte ceiling (must be at least the
            server's for large view reads).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout)
        self._sock.settimeout(timeout)
        self._decoder = FrameDecoder(max_frame)
        self._max_frame = max_frame
        self._inbox: List[Dict[str, Any]] = []
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    # wire plumbing
    # ------------------------------------------------------------------
    def _call(self, op: str, **fields: Any) -> Any:
        if self._closed:
            raise NetworkError("client is closed")
        self._next_id += 1
        rid = self._next_id
        try:
            self._sock.sendall(
                encode_frame(request(rid, op, **fields), self._max_frame)
            )
            response = self._receive(rid)
        except (OSError, socket.timeout) as exc:
            self.close()
            raise NetworkError(
                f"connection lost during {op!r}: {exc} "
                f"(outcome of the request is unknown)"
            ) from exc
        return unwrap_response(response)

    def _receive(self, rid: int) -> Dict[str, Any]:
        while True:
            for index, frame in enumerate(self._inbox):
                if frame.get("id") == rid:
                    return self._inbox.pop(index)
            data = self._sock.recv(64 * 1024)
            if not data:
                raise OSError("server closed the connection mid-response")
            self._inbox.extend(self._decoder.feed(data))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def open_session(self, user: str) -> Dict[str, Any]:
        """Authenticate the connection; must be the first call."""
        return self._call("open_session", user=user)

    def query(
        self, path: str, deadline_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        """Evaluate XPath on the session's view; a typed wire value."""
        return self._call("query", path=path, deadline_ms=deadline_ms)

    def select(
        self, path: str, deadline_ms: Optional[float] = None
    ) -> List[str]:
        """The matched nodes, each serialized as XML."""
        return self._call("select", path=path, deadline_ms=deadline_ms)[
            "nodes"
        ]

    def read_xml(
        self,
        indent: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> str:
        """The session's whole authorized view as XML."""
        return self._call(
            "read_xml", indent=indent, deadline_ms=deadline_ms
        )["xml"]

    def execute(
        self,
        script: str,
        strict: bool = False,
        deadline_ms: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Apply an XUpdate script; returns the commit summary.  The
        result frame arrives only after the commit is durable (group-
        fsynced when the server batches).  With ``idempotency_key``
        set, a re-send of the same key is answered from the server's
        exactly-once ledger (``"deduped": true`` in the summary)
        instead of being applied again."""
        return self._call(
            "execute",
            script=script,
            strict=strict,
            deadline_ms=deadline_ms,
            idempotency_key=idempotency_key,
        )

    def stats(self) -> Dict[str, Any]:
        """The server's serving ledger plus ``net_*`` counters."""
        return self._call("stats")

    def close(self) -> None:
        """Say goodbye (best effort) and drop the socket."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.sendall(
                encode_frame(
                    request(self._next_id + 1, "close"), self._max_frame
                )
            )
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncNetClient:
    """The asyncio twin of :class:`NetClient` (one connection, calls
    awaited one at a time per connection -- hold many client objects
    to hold many connections)."""

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._decoder = FrameDecoder(max_frame)
        self._max_frame = max_frame
        self._inbox: List[Dict[str, Any]] = []
        self._next_id = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, *, max_frame: int = DEFAULT_MAX_FRAME
    ) -> "AsyncNetClient":
        client = cls(max_frame)
        client._reader, client._writer = await asyncio.open_connection(
            host, port
        )
        return client

    async def _call(self, op: str, **fields: Any) -> Any:
        if self._writer is None:
            raise NetworkError("client is not connected")
        self._next_id += 1
        rid = self._next_id
        try:
            self._writer.write(
                encode_frame(request(rid, op, **fields), self._max_frame)
            )
            await self._writer.drain()
            response = await self._receive(rid)
        except (OSError, asyncio.IncompleteReadError) as exc:
            await self.close()
            raise NetworkError(
                f"connection lost during {op!r}: {exc} "
                f"(outcome of the request is unknown)"
            ) from exc
        return unwrap_response(response)

    async def _receive(self, rid: int) -> Dict[str, Any]:
        while True:
            for index, frame in enumerate(self._inbox):
                if frame.get("id") == rid:
                    return self._inbox.pop(index)
            data = await self._reader.read(64 * 1024)
            if not data:
                raise OSError("server closed the connection mid-response")
            self._inbox.extend(self._decoder.feed(data))

    async def open_session(self, user: str) -> Dict[str, Any]:
        """Authenticate this connection as ``user`` (first call only)."""
        return await self._call("open_session", user=user)

    async def query(
        self, path: str, deadline_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        """Evaluate ``path`` on the view; returns the typed wire value."""
        return await self._call("query", path=path, deadline_ms=deadline_ms)

    async def select(
        self, path: str, deadline_ms: Optional[float] = None
    ) -> List[str]:
        """The nodes ``path`` selects on the view, serialized."""
        result = await self._call(
            "select", path=path, deadline_ms=deadline_ms
        )
        return result["nodes"]

    async def read_xml(
        self,
        indent: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> str:
        """The session's authorized view, serialized."""
        result = await self._call(
            "read_xml", indent=indent, deadline_ms=deadline_ms
        )
        return result["xml"]

    async def execute(
        self,
        script: str,
        strict: bool = False,
        deadline_ms: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Apply an XUpdate script; acknowledged means durable.  A
        re-send under the same ``idempotency_key`` is answered from
        the exactly-once ledger, never applied twice."""
        return await self._call(
            "execute",
            script=script,
            strict=strict,
            deadline_ms=deadline_ms,
            idempotency_key=idempotency_key,
        )

    async def stats(self) -> Dict[str, Any]:
        """The server ledger plus the front-end's ``net_*`` counters."""
        return await self._call("stats")

    async def close(self) -> None:
        """Close the connection (best-effort ``close`` op first)."""
        writer, self._writer = self._writer, None
        if writer is None:
            return
        try:
            writer.write(
                encode_frame(
                    request(self._next_id + 1, "close"), self._max_frame
                )
            )
            await writer.drain()
        except (OSError, ConnectionError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass


def execute_with_failover(
    endpoints,
    user: str,
    script: str,
    *,
    idempotency_key: str,
    strict: bool = False,
    deadline_ms: Optional[float] = None,
    timeout: Optional[float] = None,
    rounds: int = 2,
) -> Dict[str, Any]:
    """Send one write, at most once applied, across a failing-over
    cluster.

    Walks the candidate ``endpoints`` (an iterable of ``(host, port)``
    pairs) re-sending the *same* script under the *same*
    ``idempotency_key`` until one endpoint -- whoever currently holds
    the primary role -- acknowledges.  Because every send carries the
    key, the loop is safe against the unknown-outcome hole: if the old
    primary committed but died before the ack reached us, the re-send
    (to it after restart, or to its promoted successor, whose ledger
    was rebuilt from the shipped log) is answered with the original
    summary and ``"deduped": true``.

    Re-sent on: :class:`~repro.errors.NetworkError` (connection
    refused/torn -- outcome unknown) and the relayed kinds in which the
    endpoint *refused to be primary* (``StaleEpochError``,
    ``CircuitOpenError``, ``WalWriteError``).  Every other failure --
    ``AccessDenied``, a parse error, a deadline -- is the request's own
    verdict and is raised immediately.

    Args:
        endpoints: candidate ``(host, port)`` pairs, tried in order.
        user: subject to open the session as.
        script: the XUpdate script.
        idempotency_key: required -- without it a retry could apply
            the script twice, which is the bug this helper exists to
            prevent.
        strict / deadline_ms: as :meth:`NetClient.execute`.
        timeout: per-connection socket timeout.
        rounds: full passes over the endpoint list before giving up.

    Raises:
        NetworkError: no endpoint acknowledged in ``rounds`` passes.
        RemoteError: an endpoint failed the request on its merits.
    """
    if not idempotency_key:
        raise ValueError("idempotency_key must be a non-empty string")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    ring = list(endpoints)
    if not ring:
        raise ValueError("endpoints must name at least one (host, port)")
    failures: List[str] = []
    for _ in range(rounds):
        for host, port in ring:
            try:
                with NetClient(host, port, timeout=timeout) as client:
                    client.open_session(user)
                    return client.execute(
                        script,
                        strict=strict,
                        deadline_ms=deadline_ms,
                        idempotency_key=idempotency_key,
                    )
            except NetworkError as exc:
                failures.append(f"{host}:{port}: {exc}")
            except RemoteError as exc:
                if exc.kind not in _FAILOVER_KINDS:
                    raise
                failures.append(f"{host}:{port}: {exc.kind}")
    raise NetworkError(
        f"no endpoint acknowledged after {rounds} round(s) over "
        f"{len(ring)} endpoint(s): " + "; ".join(failures[-len(ring):])
    )
