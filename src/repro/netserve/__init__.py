"""The network front-end: a framed protocol over a served database.

Everything below :class:`~repro.serving.DatabaseServer` is a library
call; this package puts a socket in front of it.  An asyncio listener
(:class:`NetServer`) speaks a length-prefixed JSON protocol
(:mod:`~repro.netserve.framing`, :mod:`~repro.netserve.protocol`) with
per-connection authenticated sessions, propagates each request's
``deadline_ms`` into the serving layer's deadline machinery, pushes
back on overload by *not reading* saturated connections, and batches
concurrently arriving write scripts through the
:class:`~repro.serving.GroupCommitter` so N writers share one WAL
fsync.  :class:`NetClient` / :class:`AsyncNetClient` are the matching
clients.  See DESIGN.md §13.
"""

from .client import AsyncNetClient, NetClient, execute_with_failover
from .framing import DEFAULT_MAX_FRAME, FrameDecoder, encode_frame
from .protocol import OPS, PROTOCOL_VERSION
from .server import NetServer, NetServerHandle, serve_in_thread

__all__ = [
    "AsyncNetClient",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "NetClient",
    "NetServer",
    "NetServerHandle",
    "OPS",
    "PROTOCOL_VERSION",
    "encode_frame",
    "execute_with_failover",
    "serve_in_thread",
]
