"""WAL-shipping replication: primary/replica serving over one log.

The write-ahead log (:mod:`repro.wal`) is a complete, replayable
stream of committed XUpdate scripts, and the paper makes ``dbnew`` a
deterministic function of ``db`` and the script (formulae (2)-(9)) --
so *shipping the log* ships the database, enforcement included: a
replica replaying the stream through the real secured update path
re-derives the same document, the same policy, and the same authorized
view for every user.

Four pieces:

- :class:`Replica` follows a primary's log directory with a
  :class:`~repro.wal.WalStream`, seeds itself through the recovery
  path (newest checkpoint + committed suffix), applies each streamed
  record through :func:`repro.wal.apply_record`, and serves read-only
  sessions from its own shared view cache.  Failure is first-class:
  a pruned-away stream position falls back to checkpoint catch-up, a
  stamped-version or checkpoint-digest mismatch quarantines the
  replica (diverged state is *never* served), and the replication
  kill-points (``stream-truncated``, ``replica-before-apply``,
  ``replica-mid-replay``) let the chaos lane kill all of it mid-step.
- :class:`ReplicationRouter` routes writes to the primary
  :class:`~repro.serving.DatabaseServer` and reads to any replica
  fresh enough for the caller -- read-your-writes over the stamped
  versions every commit already carries, waiting out replica lag
  under the serving layer's deadline machinery and falling through
  to the primary when no replica catches up in time.
- :class:`FailoverSupervisor` closes the loop: heartbeat probes over
  :meth:`DatabaseServer.stats` detect a dead primary (poisoned log,
  stuck-open breaker, probe failure), and a supervised promotion
  drains the most-caught-up replica, re-opens it as a full primary
  under a strictly higher **fencing epoch**, and fences the deposed
  one so it can never acknowledge a write again.  Exactly-once client
  acks survive the switch: the idempotency ledger is rebuilt from the
  log and carried across the promotion.
- The ``make replication`` and ``make failover`` lanes: 500+ seeded
  chaos schedules killing replicas mid-replay/mid-catch-up and the
  primary mid-group-commit/mid-promotion, asserting convergence to
  byte-identical state, no acknowledged write lost, and no
  stale-epoch write ever acknowledged (tests/replication/).

See DESIGN.md sections 12 and 14 for the protocol, the consistency
guarantees and the failure matrix.
"""

from .repair import RepairReport, repair_from_peer
from .replica import Replica
from .router import ReplicationRouter, RouteDecision
from .supervisor import FailoverSupervisor

__all__ = [
    "FailoverSupervisor",
    "RepairReport",
    "Replica",
    "ReplicationRouter",
    "RouteDecision",
    "repair_from_peer",
]
