"""Policy store tests: priorities, validation, rule queries."""

import pytest

from repro.security import Policy, PolicyError, Privilege, SubjectHierarchy
from repro.security.policy import SecurityRule


@pytest.fixture
def small_subjects():
    h = SubjectHierarchy()
    h.add_role("staff")
    h.add_role("doctor", member_of="staff")
    h.add_user("laporte", member_of="doctor")
    h.add_user("outsider")
    return h


@pytest.fixture
def small_policy(small_subjects):
    return Policy(small_subjects)


class TestInsertion:
    def test_grant_returns_rule(self, small_policy):
        rule = small_policy.grant("read", "//*", "staff")
        assert rule.effect == "accept"
        assert rule.privilege is Privilege.READ
        assert rule.priority == 1

    def test_priorities_strictly_increase(self, small_policy):
        r1 = small_policy.grant("read", "//*", "staff")
        r2 = small_policy.deny("read", "//a", "doctor")
        r3 = small_policy.grant("position", "//a", "doctor")
        assert r1.priority < r2.priority < r3.priority

    def test_explicit_priorities_accepted(self, small_policy):
        rule = small_policy.grant("read", "//*", "staff", priority=10)
        assert rule.priority == 10

    def test_auto_priority_continues_after_explicit(self, small_policy):
        small_policy.grant("read", "//*", "staff", priority=100)
        nxt = small_policy.grant("read", "//a", "doctor")
        assert nxt.priority > 100

    def test_duplicate_priority_rejected(self, small_policy):
        small_policy.grant("read", "//*", "staff", priority=5)
        with pytest.raises(PolicyError):
            small_policy.deny("read", "//*", "doctor", priority=5)

    def test_unknown_subject_rejected(self, small_policy):
        with pytest.raises(PolicyError):
            small_policy.grant("read", "//*", "ghost")

    def test_invalid_path_rejected(self, small_policy):
        with pytest.raises(PolicyError):
            small_policy.grant("read", "//a[", "staff")

    def test_invalid_privilege_rejected(self, small_policy):
        with pytest.raises(ValueError):
            small_policy.grant("fly", "//*", "staff")

    def test_privilege_enum_accepted_directly(self, small_policy):
        rule = small_policy.grant(Privilege.DELETE, "//*", "staff")
        assert rule.privilege is Privilege.DELETE

    def test_bad_effect_rejected(self):
        with pytest.raises(PolicyError):
            SecurityRule("maybe", Privilege.READ, "//*", "staff", 1)


class TestQueries:
    def test_iteration_in_priority_order(self, small_policy):
        small_policy.grant("read", "//b", "staff", priority=7)
        small_policy.grant("read", "//a", "staff", priority=3)
        priorities = [r.priority for r in small_policy]
        assert priorities == [3, 7]

    def test_rules_for_uses_isa_closure(self, small_policy):
        staff_rule = small_policy.grant("read", "//*", "staff")
        doctor_rule = small_policy.grant("read", "//a", "doctor")
        outsider_rule = small_policy.grant("read", "//b", "outsider")
        applicable = small_policy.rules_for("laporte", Privilege.READ)
        assert staff_rule in applicable
        assert doctor_rule in applicable
        assert outsider_rule not in applicable

    def test_rules_for_filters_privilege(self, small_policy):
        small_policy.grant("read", "//*", "staff")
        write_rule = small_policy.grant("update", "//*", "staff")
        applicable = small_policy.rules_for("laporte", Privilege.UPDATE)
        assert applicable == [write_rule]

    def test_facts_view(self, small_policy):
        small_policy.grant("read", "//*", "staff", priority=10)
        small_policy.deny("read", "//a", "doctor", priority=11)
        assert list(small_policy.facts()) == [
            ("accept", "read", "//*", "staff", 10),
            ("deny", "read", "//a", "doctor", 11),
        ]

    def test_len(self, small_policy):
        assert len(small_policy) == 0
        small_policy.grant("read", "//*", "staff")
        assert len(small_policy) == 1


class TestRevocation:
    def test_revoke_removes_rule(self, small_policy):
        rule = small_policy.grant("read", "//*", "staff")
        small_policy.revoke(rule)
        assert len(small_policy) == 0

    def test_revoke_unknown_rule_raises(self, small_policy):
        ghost = SecurityRule("accept", Privilege.READ, "//*", "staff", 99)
        with pytest.raises(PolicyError):
            small_policy.revoke(ghost)


class TestPrivilegeParsing:
    @pytest.mark.parametrize("name", ["position", "read", "insert", "update", "delete"])
    def test_all_five_privileges(self, name):
        assert Privilege.parse(name).value == name

    def test_case_insensitive(self):
        assert Privilege.parse("READ") is Privilege.READ

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            Privilege.parse("write")
