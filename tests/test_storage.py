"""Persistence round-trip tests."""

import pytest
from hypothesis import given, settings

from repro.core import hospital_database
from repro.storage import (
    StorageError,
    dump_database,
    load_database,
    load_from_file,
    save_to_file,
)
from repro.security import SecureXMLDatabase
from repro.xupdate import UpdateContent

from tests.strategies import build_policy, build_subjects, documents, policy_rules


class TestRoundTrip:
    def test_paper_database_round_trips(self):
        db = hospital_database()
        text = dump_database(db)
        again = load_database(text)
        # Same document shape.
        from repro.xmltree import serialize

        assert serialize(again.document) == serialize(db.document)
        # Same subjects and closure.
        assert again.subjects.subjects == db.subjects.subjects
        assert set(again.subjects.closure_facts()) == set(
            db.subjects.closure_facts()
        )
        # Same policy facts, priorities included.
        assert list(again.policy.facts()) == list(db.policy.facts())

    def test_views_identical_after_reload(self):
        db = hospital_database()
        again = load_database(dump_database(db))
        for user in ("beaufort", "robert", "richard", "laporte"):
            assert (
                again.login(user).read_xml() == db.login(user).read_xml()
            )

    def test_writes_work_after_reload(self):
        db = load_database(dump_database(hospital_database()))
        doctor = db.login("laporte")
        result = doctor.execute(
            UpdateContent("/patients/franck/diagnosis", "flu"), strict=True
        )
        assert result.fully_applied

    def test_dump_is_stable(self):
        db = hospital_database()
        once = dump_database(db)
        twice = dump_database(load_database(once))
        assert once == twice

    def test_empty_database(self):
        db = SecureXMLDatabase.from_xml("<r/>")
        again = load_database(dump_database(db))
        assert again.document.root is not None
        assert len(again.policy) == 0

    def test_file_round_trip(self, tmp_path):
        db = hospital_database()
        path = str(tmp_path / "hospital.securedb.xml")
        save_to_file(db, path)
        again = load_from_file(path)
        assert list(again.policy.facts()) == list(db.policy.facts())

    @given(documents(), policy_rules())
    @settings(max_examples=40, deadline=None)
    def test_random_databases_round_trip(self, doc, rules):
        from hypothesis import assume

        from repro.xmltree import NodeKind

        # Adjacent text siblings cannot be represented distinctly in
        # XML text, so such documents are not faithfully storable;
        # exclude them from the round-trip property.
        for nid in doc.all_nodes():
            kids = doc.children(nid)
            assume(
                not any(
                    doc.kind(a) is NodeKind.TEXT and doc.kind(b) is NodeKind.TEXT
                    for a, b in zip(kids, kids[1:])
                )
            )
        subjects = build_subjects()
        policy = build_policy(subjects, rules)
        db = SecureXMLDatabase(doc, subjects, policy)
        again = load_database(dump_database(db))
        from repro.xmltree import serialize

        assert serialize(again.document) == serialize(db.document)
        assert list(again.policy.facts()) == list(db.policy.facts())
        # Derived security state is identical too.  Node ids may differ
        # (adjacent text children merge on the XML round-trip), so the
        # comparison is on the serialized views.
        assert serialize(again.build_view("u2").doc) == serialize(
            db.build_view("u2").doc
        )


class TestErrors:
    def test_wrong_root_element(self):
        with pytest.raises(StorageError):
            load_database("<not-a-db/>")

    def test_unsupported_version(self):
        with pytest.raises(StorageError):
            load_database(
                '<securedb version="999"><subjects/><policy/><document/></securedb>'
            )

    def test_missing_section(self):
        with pytest.raises(StorageError):
            load_database('<securedb version="1"><subjects/></securedb>')

    def test_dangling_isa_reference(self):
        with pytest.raises(Exception):
            load_database(
                '<securedb version="1">'
                '<subjects><user name="u"><isa>ghost</isa></user></subjects>'
                "<policy/><document/></securedb>"
            )

    def test_rule_for_unknown_subject(self):
        with pytest.raises(Exception):
            load_database(
                '<securedb version="1"><subjects/>'
                '<policy><rule effect="accept" privilege="read" '
                'subject="ghost" priority="1" path="//*"/></policy>'
                "<document/></securedb>"
            )

    def test_bad_effect(self):
        with pytest.raises(StorageError):
            load_database(
                '<securedb version="1">'
                '<subjects><user name="u"/></subjects>'
                '<policy><rule effect="maybe" privilege="read" '
                'subject="u" priority="1" path="//*"/></policy>'
                "<document/></securedb>"
            )

    def test_two_document_roots(self):
        with pytest.raises(StorageError):
            load_database(
                '<securedb version="1"><subjects/><policy/>'
                "<document><a/><b/></document></securedb>"
            )
