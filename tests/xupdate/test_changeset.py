"""Change-set recording: executors must publish exact structural deltas."""

import pytest

from repro.xmltree import XMLDocument, element, text
from repro.xupdate import (
    Append,
    ChangeSet,
    InsertAfter,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
    XUpdateExecutor,
)
from repro.xupdate.changeset import subtree_labels


@pytest.fixture
def doc():
    d = XMLDocument()
    root = d.add_root("patients")
    element("patient", element("service", text("cardio")), element("diagnosis")).attach(
        d, root
    )
    return d


@pytest.fixture
def executor():
    return XUpdateExecutor()


class TestRecording:
    def test_rename_records_old_and_new_labels(self, doc, executor):
        result = executor.apply(doc, Rename("//service", "svc"))
        cs = result.changes
        assert cs.relabelled == set(result.affected)
        assert {"service", "svc"} <= cs.labels
        assert not cs.added and not cs.removed and not cs.conservative

    def test_update_content_records_each_child(self, doc, executor):
        result = executor.apply(doc, UpdateContent("//service", "neuro"))
        cs = result.changes
        assert cs.relabelled == set(result.affected)
        assert {"cardio", "neuro"} <= cs.labels

    def test_append_records_whole_inserted_subtree_labels(self, doc, executor):
        fragment = element("note", element("author", text("dr")))
        result = executor.apply(doc, Append("//diagnosis", fragment))
        cs = result.changes
        assert cs.added == set(result.affected)
        assert {"note", "author", "dr"} <= cs.labels

    def test_remove_records_labels_before_deletion(self, doc, executor):
        result = executor.apply(doc, Remove("//patient"))
        cs = result.changes
        assert cs.removed == set(result.affected)
        # The subtree is gone from the result document, yet its labels
        # were captured (they gate rule-path invalidation).
        assert {"patient", "service", "cardio", "diagnosis"} <= cs.labels

    def test_insert_after_records_added_root(self, doc, executor):
        result = executor.apply(doc, InsertAfter("//diagnosis", element("extra")))
        assert result.changes.added == set(result.affected)
        assert "extra" in result.changes.labels

    def test_script_merges_per_operation_changes(self, doc, executor):
        script = UpdateScript(
            [
                Rename("//service", "svc"),
                Append("//diagnosis", element("note")),
            ]
        )
        result = executor.apply(doc, script)
        cs = result.changes
        assert cs.relabelled and cs.added
        assert {"service", "svc", "note"} <= cs.labels

    def test_no_targets_means_empty_changeset(self, doc, executor):
        result = executor.apply(doc, Rename("//nonexistent", "x"))
        assert not result.changes
        assert result.changes.labels == set()


class TestChangeSetAlgebra:
    def test_unknown_is_conservative_and_truthy(self):
        cs = ChangeSet.unknown()
        assert cs.conservative and bool(cs)

    def test_empty_is_falsy(self):
        assert not ChangeSet()

    def test_merge_unions_everything(self, doc):
        root = doc.root
        a = ChangeSet()
        a.note_added(doc, root)
        b = ChangeSet()
        b.note_relabelled(root, "patients", "people")
        merged = a.merge(b)
        assert merged.added == {root} and merged.relabelled == {root}
        assert "people" in merged.labels and "patients" in merged.labels
        assert not merged.conservative
        assert a.merge(ChangeSet.unknown()).conservative

    def test_merge_all_folds(self, doc):
        root = doc.root
        parts = []
        for label in ("x", "y"):
            cs = ChangeSet()
            cs.note_relabelled(root, "patients", label)
            parts.append(cs)
        merged = ChangeSet.merge_all(parts)
        assert {"x", "y", "patients"} <= merged.labels

    def test_touched_roots_covers_every_category(self, doc):
        root = doc.root
        kid = doc.children(root)[0]
        cs = ChangeSet()
        cs.note_added(doc, root)
        cs.note_removed(doc, kid)
        cs.note_revalued(kid, "patient")
        assert cs.touched_roots() == {root, kid}

    def test_subtree_labels_include_attributes(self):
        d = XMLDocument()
        root = d.add_root("r")
        eid = element("e", attributes={"id": "42"}).attach(d, root)
        assert {"r", "e", "id"} <= subtree_labels(d, root)
        assert "id" in subtree_labels(d, eid)


class TestSecureExecutorChanges:
    def test_secure_write_publishes_changes(self):
        from repro.core import hospital_database

        db = hospital_database()
        doctor = db.login("laporte")
        result = doctor.execute(UpdateContent("/patients/franck/diagnosis", "flu"))
        assert result.changes.relabelled
        assert "flu" in result.changes.labels
        assert not result.changes.conservative

    def test_insecure_executor_is_conservative(self):
        from repro.core import hospital_database
        from repro.security import InsecureWriteExecutor

        db = hospital_database()
        view = db.build_view("laporte")
        result = InsecureWriteExecutor().apply(
            view, Rename("//diagnosis", "dx")
        )
        assert result.changes.conservative
