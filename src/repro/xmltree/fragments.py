"""Detached tree fragments: the paper's ``TREE`` parameter.

The XUpdate creation operations (section 3.4.2) take a tree ``TREE`` to
insert, modelled by the paper as its own fact set ``node_TREE(n', v')``.
A :class:`Fragment` is that detached tree: a nested, immutable structure
independent of any document, attached to a document by the XUpdate
executor (which asks the numbering scheme for fresh identifiers via the
``create_number`` step of formula 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from .document import XMLDocument
from .labels import NodeId
from .node import NodeKind

__all__ = ["Fragment", "element", "text", "fragment_from_subtree"]


@dataclass(frozen=True)
class Fragment:
    """One node of a detached tree, with its subtree.

    Attributes:
        kind: element or text (fragments never contain document nodes).
        label: element name, or the text value for text nodes.
        attributes: name -> value mapping (elements only).
        children: child fragments in order.
    """

    kind: NodeKind
    label: str
    attributes: Tuple[Tuple[str, str], ...] = ()
    children: Tuple["Fragment", ...] = ()

    def __post_init__(self) -> None:
        if self.kind is NodeKind.DOCUMENT:
            raise ValueError("fragments cannot contain a document node")
        if self.kind is NodeKind.TEXT and (self.children or self.attributes):
            raise ValueError("text fragments cannot have children or attributes")

    def size(self) -> int:
        """Total number of nodes in the fragment (attributes included)."""
        return (
            1
            + len(self.attributes)
            + sum(child.size() for child in self.children)
        )

    def labels(self) -> Iterator[str]:
        """All labels in the fragment, pre-order (the ``node_TREE`` facts)."""
        yield self.label
        for name, __ in self.attributes:
            yield name
        for child in self.children:
            yield from child.labels()

    def attach(self, doc: XMLDocument, parent: NodeId) -> NodeId:
        """Append this fragment as the last child subtree of ``parent``.

        Returns the identifier assigned to the fragment's own node.  This
        is the operational form of formula 7 with ``o = append``: each
        fragment node receives a fresh number from the scheme.
        """
        nid = doc.append_child(parent, self.kind, self.label)
        self._attach_content(doc, nid)
        return nid

    def attach_before(self, doc: XMLDocument, sibling: NodeId) -> NodeId:
        """Insert this fragment as the immediately preceding sibling tree."""
        nid = doc.insert_before(sibling, self.kind, self.label)
        self._attach_content(doc, nid)
        return nid

    def attach_after(self, doc: XMLDocument, sibling: NodeId) -> NodeId:
        """Insert this fragment as the immediately following sibling tree."""
        nid = doc.insert_after(sibling, self.kind, self.label)
        self._attach_content(doc, nid)
        return nid

    def _attach_content(self, doc: XMLDocument, nid: NodeId) -> None:
        for name, value in self.attributes:
            doc.set_attribute(nid, name, value)
        for child in self.children:
            child.attach(doc, nid)


def element(
    name: str,
    *children: Union[Fragment, str],
    attributes: Dict[str, str] | None = None,
) -> Fragment:
    """Build an element fragment; bare strings become text children.

    Example::

        element("albert", element("service", "cardiology"),
                element("diagnosis"))
    """
    kids: List[Fragment] = []
    for child in children:
        kids.append(text(child) if isinstance(child, str) else child)
    attrs = tuple(sorted((attributes or {}).items()))
    return Fragment(NodeKind.ELEMENT, name, attrs, tuple(kids))


def text(value: str) -> Fragment:
    """Build a text fragment."""
    return Fragment(NodeKind.TEXT, value)


def fragment_from_subtree(doc: XMLDocument, nid: NodeId) -> Fragment:
    """Detach (copy) the subtree rooted at ``nid`` into a fragment."""
    node = doc.node(nid)
    if node.kind is NodeKind.TEXT:
        return text(node.label)
    if node.kind is NodeKind.DOCUMENT:
        raise ValueError("cannot build a fragment from the document node")
    attrs = tuple(
        (doc.node(a).label, doc.node(a).value) for a in doc.attributes(nid)
    )
    kids = tuple(fragment_from_subtree(doc, c) for c in doc.children(nid))
    return Fragment(node.kind, node.label, attrs, kids)
