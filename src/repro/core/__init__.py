"""High-level entry points and the paper's running example fixtures."""

from .paper import (
    MEDICAL_XML,
    PAPER_POLICY_RULES,
    hospital_database,
    hospital_policy,
    hospital_subjects,
    medical_document,
)

__all__ = [
    "MEDICAL_XML",
    "PAPER_POLICY_RULES",
    "hospital_database",
    "hospital_policy",
    "hospital_subjects",
    "medical_document",
]
