"""The vulnerable, source-evaluated write semantics (paper section 2.2).

This module exists to reproduce the paper's *negative* result: SQL --
and the author's earlier XML model [10], which interprets SQL's security
model -- evaluates write operations on the **source** database, checking
only the write privilege.  The PATH (SQL's WHERE clause) may therefore
perform read operations over data the user is not permitted to see, and
the success/failure pattern of the write leaks that data back:

    SQL> UPDATE user_A.employee SET salary=salary+100 WHERE salary > 3000;
    2 rows updated        -- user_B just learned two salaries exceed 3000

:class:`InsecureWriteExecutor` implements exactly those semantics so
experiment E10 can demonstrate the covert channel and show that
:class:`~repro.security.write.SecureWriteExecutor` closes it.  Never use
this class outside benchmarks and tests.
"""

from __future__ import annotations

from typing import List, Optional

from ..xmltree.labels import NodeId
from ..xupdate.executor import XUpdateExecutor
from ..xupdate.operations import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    XUpdateOperation,
)
from .perm import PermissionResolver
from .policy import Policy
from .privileges import Privilege
from .view import View
from .write import Denial, SecureUpdateResult

__all__ = ["InsecureWriteExecutor"]


class InsecureWriteExecutor:
    """Writes evaluated on the source database (the model of [10] / SQL).

    The only checks performed are the *write* privileges of section 4.3;
    the read privilege never participates, which is the vulnerability.

    Args:
        executor: tree-mutation primitives; defaults to a fresh one.
        resolver: permission resolver (write privileges still apply).
    """

    def __init__(
        self,
        executor: Optional[XUpdateExecutor] = None,
        resolver: Optional[PermissionResolver] = None,
    ) -> None:
        from ..xpath.engine import XPathEngine

        self._executor = (
            executor
            if executor is not None
            else XUpdateExecutor(
                XPathEngine(lone_variable_name_test=True, star_matches_text=True)
            )
        )
        self._resolver = resolver if resolver is not None else PermissionResolver()

    def apply(self, view: View, operation: XUpdateOperation) -> SecureUpdateResult:
        """Apply with source-evaluated PATH selection.

        Takes the same :class:`View` argument as the secure executor so
        the two are drop-in comparable in E10; only
        ``view.source`` / ``view.permissions`` are used -- the view
        document itself is deliberately ignored.
        """
        source = view.source
        perms = view.permissions
        # THE VULNERABILITY: selection runs on the source theory ``db``.
        selected = self._executor.engine.select(
            source, operation.path, variables={"USER": view.user}
        )
        new_doc = source.copy()
        affected: List[NodeId] = []
        denials: List[Denial] = []

        def allowed(nid: NodeId, privilege: Privilege, what: str) -> bool:
            if perms.holds(nid, privilege):
                return True
            denials.append(Denial(nid, privilege, what))
            return False

        if isinstance(operation, Rename):
            for nid in selected:
                if nid.is_document:
                    continue
                if allowed(nid, Privilege.UPDATE, "rename requires update"):
                    new_doc.relabel(nid, operation.new_name)
                    affected.append(nid)
        elif isinstance(operation, UpdateContent):
            for nid in selected:
                for child in source.children(nid):
                    if allowed(child, Privilege.UPDATE, "update requires update"):
                        new_doc.relabel(child, operation.new_value)
                        affected.append(child)
        elif isinstance(operation, Append):
            for nid in selected:
                if allowed(nid, Privilege.INSERT, "append requires insert"):
                    affected.append(operation.tree.attach(new_doc, nid))
        elif isinstance(operation, (InsertBefore, InsertAfter)):
            for nid in selected:
                if nid.is_document:
                    continue
                parent = nid.parent()
                if allowed(parent, Privilege.INSERT, "insert requires insert on parent"):
                    if isinstance(operation, InsertBefore):
                        affected.append(operation.tree.attach_before(new_doc, nid))
                    else:
                        affected.append(operation.tree.attach_after(new_doc, nid))
        elif isinstance(operation, Remove):
            for nid in sorted(selected, key=lambda n: n.level):
                if nid.is_document:
                    continue
                if allowed(nid, Privilege.DELETE, "remove requires delete"):
                    if nid in new_doc:
                        new_doc.remove_subtree(nid)
                        affected.append(nid)
        else:
            raise TypeError(f"unknown operation {operation!r}")
        from ..xupdate.changeset import ChangeSet

        # This executor exists for the E10 vulnerability comparison and
        # does not track a structural delta; publish a conservative
        # change-set so any caller that commits the result makes the
        # serving caches fall back to full re-derivation.
        return SecureUpdateResult(
            document=new_doc,
            selected=list(selected),
            affected=affected,
            denials=denials,
            changes=ChangeSet.unknown(),
        )
