"""Datalog programs: fact and rule containers with stratification.

A :class:`Program` collects extensional facts and rules, checks rule
safety, and computes a stratification so negation is evaluated only over
fully-derived lower strata -- the closed-world reading the paper adopts
("anything that we cannot show to be true is false", section 3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .terms import Atom, BodyItem, Comparison, Literal, Rule, Term

__all__ = ["Program", "StratificationError"]


class StratificationError(ValueError):
    """The program has negation inside a recursive cycle."""


class Program:
    """A set of facts and rules forming one Datalog program."""

    def __init__(self) -> None:
        self._facts: Dict[str, Set[Tuple[object, ...]]] = defaultdict(set)
        self._rules: List[Rule] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def fact(self, predicate: str, *args: object) -> None:
        """Add one ground fact.

        Raises:
            ValueError: if any argument is a variable.
        """
        ground = Atom(predicate, tuple(args))
        if not ground.is_ground():
            raise ValueError(f"facts must be ground: {ground!r}")
        self._facts[predicate].add(ground.args)

    def facts_for(self, predicate: str) -> Set[Tuple[object, ...]]:
        """The extensional facts recorded for one predicate."""
        return set(self._facts.get(predicate, ()))

    def add_rule(self, rule: Rule) -> None:
        """Add a rule after checking safety.

        Raises:
            ValueError: if the rule is unsafe.
        """
        rule.check_safety()
        self._rules.append(rule)

    def rule(self, head: Atom, *body: BodyItem) -> None:
        """Convenience: ``program.rule(atom(...), pos(...), neg(...))``."""
        self.add_rule(Rule(head, tuple(body)))

    def extend(self, other: "Program") -> None:
        """Merge another program's facts and rules into this one."""
        for predicate, tuples in other._facts.items():
            self._facts[predicate] |= tuples
        for rule in other._rules:
            self._rules.append(rule)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def rules(self) -> Sequence[Rule]:
        return tuple(self._rules)

    @property
    def extensional_facts(self) -> Dict[str, Set[Tuple[object, ...]]]:
        return {p: set(ts) for p, ts in self._facts.items()}

    def predicates(self) -> Set[str]:
        """Every predicate mentioned anywhere in the program."""
        out: Set[str] = set(self._facts)
        for rule in self._rules:
            out.add(rule.head.predicate)
            for item in rule.body:
                if isinstance(item, Literal):
                    out.add(item.atom.predicate)
        return out

    def idb_predicates(self) -> Set[str]:
        """Predicates defined by at least one rule head."""
        return {rule.head.predicate for rule in self._rules}

    # ------------------------------------------------------------------
    # stratification
    # ------------------------------------------------------------------
    def stratify(self) -> List[List[Rule]]:
        """Partition the rules into strata.

        Uses the classic iterative level assignment: ``level(p) >=
        level(q)`` for a positive dependency of p on q, and ``level(p) >
        level(q)`` for a negative one.  A program requiring more
        iterations than predicates has a negative cycle.

        Returns:
            The rules grouped by stratum, lowest first.

        Raises:
            StratificationError: for programs with negation through
                recursion.
        """
        level: Dict[str, int] = {p: 0 for p in self.predicates()}
        n = len(level) + 1
        for _ in range(n):
            changed = False
            for rule in self._rules:
                head = rule.head.predicate
                for item in rule.body:
                    if not isinstance(item, Literal):
                        continue
                    dep = item.atom.predicate
                    required = level[dep] + (1 if item.negated else 0)
                    if level[head] < required:
                        level[head] = required
                        changed = True
            if not changed:
                break
        else:
            raise StratificationError(
                "program is not stratifiable (negation through recursion)"
            )
        strata: Dict[int, List[Rule]] = defaultdict(list)
        for rule in self._rules:
            strata[level[rule.head.predicate]].append(rule)
        return [strata[i] for i in sorted(strata)]
