"""Subject hierarchy tests: figure 3 and the axioms 11-12 closure."""

import pytest

from repro.security import SubjectError, SubjectHierarchy


@pytest.fixture
def hierarchy(subjects):
    return subjects  # the figure-3 fixture from conftest


class TestConstruction:
    def test_roles_and_users_disjoint(self, hierarchy):
        assert "staff" in hierarchy.roles
        assert "laporte" in hierarchy.users
        assert "staff" not in hierarchy.users
        assert hierarchy.is_user("robert")
        assert not hierarchy.is_user("doctor")

    def test_duplicate_subject_rejected(self, hierarchy):
        with pytest.raises(SubjectError):
            hierarchy.add_role("staff")
        with pytest.raises(SubjectError):
            hierarchy.add_user("staff")

    def test_empty_name_rejected(self):
        with pytest.raises(SubjectError):
            SubjectHierarchy().add_role("")

    def test_isa_requires_declared_subjects(self, hierarchy):
        with pytest.raises(SubjectError):
            hierarchy.add_isa("ghost", "staff")
        with pytest.raises(SubjectError):
            hierarchy.add_isa("laporte", "ghost")

    def test_cycle_rejected(self, hierarchy):
        with pytest.raises(SubjectError):
            hierarchy.add_isa("staff", "laporte")

    def test_redundant_edge_harmless(self, hierarchy):
        hierarchy.add_isa("laporte", "doctor")  # already there
        assert hierarchy.isa("laporte", "doctor")

    def test_multiple_parents_allowed(self):
        h = SubjectHierarchy()
        h.add_role("a")
        h.add_role("b")
        h.add_user("u")
        h.add_isa("u", "a")
        h.add_isa("u", "b")
        assert h.isa("u", "a") and h.isa("u", "b")


class TestClosure:
    """Axioms 11 (reflexivity) and 12 (transitivity)."""

    def test_reflexive(self, hierarchy):
        for subject in hierarchy.subjects:
            assert hierarchy.isa(subject, subject)

    def test_transitive(self, hierarchy):
        assert hierarchy.isa("laporte", "doctor")
        assert hierarchy.isa("doctor", "staff")
        assert hierarchy.isa("laporte", "staff")

    def test_not_symmetric(self, hierarchy):
        assert not hierarchy.isa("staff", "laporte")
        assert not hierarchy.isa("doctor", "laporte")

    def test_separate_trees_unrelated(self, hierarchy):
        assert not hierarchy.isa("robert", "staff")
        assert not hierarchy.isa("laporte", "patient")

    def test_ancestors_of_figure3_users(self, hierarchy):
        assert hierarchy.ancestors("laporte") == {"laporte", "doctor", "staff"}
        assert hierarchy.ancestors("beaufort") == {
            "beaufort",
            "secretary",
            "staff",
        }
        assert hierarchy.ancestors("richard") == {
            "richard",
            "epidemiologist",
            "staff",
        }
        assert hierarchy.ancestors("robert") == {"robert", "patient"}

    def test_members_of_role(self, hierarchy):
        assert hierarchy.members("patient") == {"patient", "robert", "franck"}
        assert hierarchy.members("staff") == {
            "staff",
            "secretary",
            "doctor",
            "epidemiologist",
            "beaufort",
            "laporte",
            "richard",
        }

    def test_closure_facts_contain_explicit_facts(self, hierarchy):
        explicit = set(hierarchy.isa_facts())
        closed = set(hierarchy.closure_facts())
        assert explicit <= closed
        # Paper's equation 10 lists exactly these explicit facts.
        assert explicit == {
            ("secretary", "staff"),
            ("doctor", "staff"),
            ("epidemiologist", "staff"),
            ("laporte", "doctor"),
            ("beaufort", "secretary"),
            ("richard", "epidemiologist"),
            ("robert", "patient"),
            ("franck", "patient"),
        }

    def test_closure_updates_after_new_edge(self):
        h = SubjectHierarchy()
        h.add_role("a")
        h.add_role("b")
        h.add_user("u", member_of="a")
        assert not h.isa("u", "b")
        h.add_isa("a", "b")
        assert h.isa("u", "b")

    def test_unknown_subject_queries_raise(self, hierarchy):
        with pytest.raises(SubjectError):
            hierarchy.ancestors("ghost")
        with pytest.raises(SubjectError):
            hierarchy.members("ghost")
        with pytest.raises(SubjectError):
            hierarchy.direct_parents("ghost")
