"""Admission control and the write circuit breaker."""

import pytest

from repro.errors import CircuitOpenError, DeadlineExceeded, OverloadError
from repro.serving import AdmissionController, CircuitBreaker, Deadline


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(4, policy="drop")

    def test_unlimited_admits_everything(self):
        admission = AdmissionController(None)
        for _ in range(100):
            admission.acquire()
        assert admission.in_flight == 100
        assert admission.stats["admitted"] == 100

    def test_admits_up_to_the_limit(self):
        admission = AdmissionController(2, policy="shed")
        admission.acquire()
        admission.acquire()
        assert admission.in_flight == 2
        assert admission.stats["peak_in_flight"] == 2

    def test_shed_policy_fails_fast_when_full(self):
        admission = AdmissionController(1, policy="shed")
        admission.acquire()
        with pytest.raises(OverloadError) as err:
            admission.acquire()
        assert err.value.limit == 1
        assert err.value.in_flight == 1
        assert admission.stats["shed"] == 1
        # a released slot admits again
        admission.release()
        admission.acquire()

    def test_block_policy_times_out_on_the_deadline(self, clock):
        admission = AdmissionController(1, policy="block")
        admission.acquire()
        with pytest.raises(DeadlineExceeded):
            admission.acquire(Deadline(0.0, clock=clock))
        assert admission.stats["queued"] == 1
        assert admission.stats["shed"] == 0

    def test_block_policy_admits_after_release(self):
        import threading

        admission = AdmissionController(1, policy="block")
        admission.acquire()
        admitted = threading.Event()

        def waiter():
            admission.acquire(Deadline(5.0))
            admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert not admitted.wait(0.05)  # genuinely queued
        admission.release()
        assert admitted.wait(5.0)
        thread.join(5.0)
        assert admission.in_flight == 1

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionController(1).release()

    def test_admitted_context_manager_releases_on_error(self):
        admission = AdmissionController(1, policy="shed")
        with pytest.raises(RuntimeError):
            with admission.admitted():
                raise RuntimeError("boom")
        assert admission.in_flight == 0


class TestCircuitBreaker:
    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0, clock=clock)

    def test_starts_closed_and_allows(self, clock):
        breaker = CircuitBreaker(clock=clock)
        assert breaker.state == "closed"
        breaker.allow()

    def test_trips_at_the_failure_threshold(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats["trips"] == 1
        with pytest.raises(CircuitOpenError) as err:
            breaker.allow()
        assert err.value.failures == 3
        assert err.value.retry_after > 0.0
        assert breaker.stats["rejections"] == 1

    def test_success_resets_the_failure_run(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # the run was broken

    def test_half_opens_after_the_reset_timeout(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert breaker.state == "open"
        clock.advance(0.1)
        assert breaker.state == "half-open"

    def test_half_open_admits_exactly_one_probe(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()  # the probe
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # second caller refused until the probe lands

    def test_successful_probe_closes(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()
        breaker.allow()  # no probe bottleneck once closed

    def test_failed_probe_reopens_for_another_round(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=1.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_failure()  # one failure re-opens a half-open circuit
        assert breaker.state == "open"
        assert breaker.stats["trips"] == 2
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(1.0)
        assert breaker.state == "half-open"
