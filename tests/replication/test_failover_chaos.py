"""The supervised-failover lane: seeded crash-and-promote schedules.

Each schedule runs keyed client traffic against a primary + replicas +
router + supervisor stack, kills the primary mid-commit (torn WAL
record, or -- in the grouped variants -- after the group's fsync but
before any ack: the ``old-primary-late-ack`` window), lets the
supervisor detect and promote, then replays every unknown-outcome
write under its original idempotency key.  Some schedules also crash
the *supervisor* mid-promotion (``supervisor-before-promote``,
``promote-mid-drain``) and simply run ``promote()`` again.  Same seed,
same schedule.

The invariants, asserted on every seed:

1. **No acknowledged write is ever lost**: every write the router
   acknowledged before the crash is present in the promoted primary's
   state (and in every converged survivor).
2. **Exactly-once under client retries**: every label -- acknowledged
   first try or retried across the failover under one idempotency key
   -- appears in the final document exactly once, even when the
   crashed attempt had already made it durable.
3. **A stale-epoch primary never acknowledges**: after promotion every
   write through the deposed server raises ``StaleEpochError`` and
   changes nothing.
4. **Convergence**: surviving replicas retargeted onto the new log end
   at the promoted primary's exact version with byte-identical state.
"""

import random

import pytest

from repro.errors import StaleEpochError
from repro.replication import (
    FailoverSupervisor,
    Replica,
    ReplicationRouter,
)
from repro.serving import DatabaseServer, GroupCommitter
from repro.testing.faults import InjectedFault, faults, run_threads
from repro.wal import WriteAheadLog
from repro.xmltree.serializer import serialize

from .conftest import USERS, append_script, editors_database, state_bytes

pytestmark = pytest.mark.failover

SUPERVISOR_KILL_POINTS = ("supervisor-before-promote", "promote-mid-drain")
# Group-commit crash windows: before the fsync (durability uncertain)
# and after it but before any member is acknowledged (durable, unacked
# -- the window exactly-once exists for).
GROUP_KILL_POINTS = ("group-before-fsync", "old-primary-late-ack")


@pytest.fixture(autouse=True)
def clean_injector():
    faults.reset()
    yield
    faults.reset()


def build_stack(rng, base):
    wal_dir = str(base / "db.wal")
    db = editors_database()
    wal = WriteAheadLog(
        wal_dir,
        retain_checkpoints=rng.choice((1, 2)),
        segment_bytes=rng.choice((256, 4 << 20)),
    )
    db.attach_wal(wal)
    wal.checkpoint(db)
    server = DatabaseServer(db)
    replicas = [Replica(wal_dir) for _ in range(rng.choice((1, 2)))]
    router = ReplicationRouter(server, replicas, trace=True)
    supervisor = FailoverSupervisor(
        router,
        promote_dir=str(base / "promoted"),
        heartbeat_timeout_ms=0.0,  # schedules drive time, not wall-clock
    )
    return db, wal, server, router, supervisor


def promote_with_crashes(rng, supervisor, kill_rate, *, force=False):
    """Run the promotion, randomly crashing the supervisor at its
    kill-points; a crashed promotion is simply retried -- both points
    fire before any cluster-visible mutation."""
    crashes = 0
    for _ in range(20):
        if kill_rate and rng.random() < kill_rate:
            faults.arm(rng.choice(SUPERVISOR_KILL_POINTS), after=0)
        try:
            return supervisor.promote(force=force), crashes
        except InjectedFault:
            crashes += 1
        finally:
            faults.disarm()
    return supervisor.promote(force=force), crashes


def settle_and_check(seed, router, promoted, acked):
    """The post-failover invariants shared by every schedule."""
    expected = state_bytes(promoted.database)
    for replica in router.replicas:
        replica.sync()
        assert not replica.quarantined, (seed, replica.stats())
        assert replica.version == promoted.database.version, (
            seed,
            replica.stats(),
        )
        assert state_bytes(replica.database) == expected, seed
    document = serialize(promoted.database.document)
    for key, label in acked.items():
        count = document.count(f"<{label}>")
        assert count == 1, (seed, key, label, count)
    for decision in router.decisions:
        assert decision.served_version >= decision.token, (seed, decision)


def run_schedule(seed, base, supervisor_kill_rate=0.0):
    rng = random.Random(seed)
    db, wal, server, router, supervisor = build_stack(rng, base)
    acked = {}  # key -> label: the router acknowledged this write
    unknown = {}  # key -> (user, label): attempt errored mid-crash
    label = 0

    # -- pre-crash traffic -------------------------------------------
    for _ in range(rng.randint(3, 6)):
        action = rng.choice(
            ("write", "write", "read", "poll", "checkpoint")
        )
        user = rng.choice(USERS)
        if action == "write":
            key, name = f"s{seed}k{label}", f"s{seed}x{label}"
            label += 1
            router.execute(
                user, append_script(name), idempotency_key=key
            )
            acked[key] = name
        elif action == "read":
            assert router.read_xml(user) is not None
        elif action == "poll" and router.replicas:
            rng.choice(router.replicas).poll()
        elif action == "checkpoint":
            wal.checkpoint(db)

    # -- kill the primary mid-record on a keyed write ----------------
    user = rng.choice(USERS)
    key, name = f"s{seed}k{label}", f"s{seed}x{label}"
    label += 1
    faults.arm("wal-mid-record", after=0)
    try:
        router.execute(user, append_script(name), idempotency_key=key)
        raise AssertionError(f"seed {seed}: the armed write survived")
    except InjectedFault:
        unknown[key] = (user, name)
    except Exception:
        unknown[key] = (user, name)
    finally:
        faults.disarm()

    # -- detection and (possibly crash-retried) promotion ------------
    supervisor.heartbeat()
    assert supervisor.primary_failed, seed
    promoted, _ = promote_with_crashes(rng, supervisor, supervisor_kill_rate)
    assert router.primary is promoted
    assert promoted.epoch == router.epoch > 0

    # -- invariant 3: the deposed primary never acknowledges ---------
    before = server.database.version
    with pytest.raises(StaleEpochError):
        server.execute(
            "w1", append_script("zombie"), idempotency_key=f"s{seed}z"
        )
    assert server.database.version == before, seed

    # -- client retries every unknown outcome under its original key -
    for key, (retry_user, retry_name) in unknown.items():
        result = router.execute(
            retry_user, append_script(retry_name), idempotency_key=key
        )
        # Deduped (the crashed attempt had landed) or applied fresh:
        # either way it is acknowledged now, and must appear once.
        assert result is not None
        acked[key] = retry_name

    # -- post-failover traffic lands on the new primary --------------
    for _ in range(rng.randint(1, 3)):
        key, name = f"s{seed}k{label}", f"s{seed}x{label}"
        label += 1
        router.execute(
            rng.choice(USERS), append_script(name), idempotency_key=key
        )
        acked[key] = name

    settle_and_check(seed, router, promoted, acked)
    return router


def test_failover_220_seeded_schedules(tmp_path):
    """The core soak: torn-record primary crashes, detection,
    promotion, keyed retries -- across 220 seeds."""
    for seed in range(220):
        run_schedule(seed, tmp_path / f"f{seed}")


def test_failover_with_supervisor_crashed_mid_promotion(tmp_path):
    """60 seeds where the supervisor itself dies at its kill-points
    and the promotion is simply run again."""
    for seed in range(60):
        run_schedule(
            seed, tmp_path / f"sk{seed}", supervisor_kill_rate=0.5
        )


def test_schedules_are_reproducible(tmp_path):
    first = run_schedule(11, tmp_path / "a", supervisor_kill_rate=0.5)
    second = run_schedule(11, tmp_path / "b", supervisor_kill_rate=0.5)
    assert first.stats()["promotions"] == second.stats()["promotions"]
    assert first.stats()["writes_routed"] == second.stats()["writes_routed"]


# ---------------------------------------------------------------------
# grouped commits: the primary dies mid-group
# ---------------------------------------------------------------------

def run_grouped_schedule(seed, base):
    """Kill the primary inside a commit *group* -- either before the
    group's fsync or in the late-ack window after it -- then promote
    and retry every member of the doomed group under its original key.
    The late-ack window is the reason the dedup ledger is replicated:
    the group is durable, replayed by the promoted replica, and the
    retries must be answered from the rebuilt ledger, not re-applied.
    """
    rng = random.Random(seed)
    db, wal, server, router, supervisor = build_stack(rng, base)
    committer = GroupCommitter(server, max_batch=4, max_delay_ms=3.0)
    acked = {}
    unknown = {}
    label = 0

    # Healthy grouped traffic first.
    for _ in range(rng.randint(1, 3)):
        burst = rng.randint(1, 4)
        jobs = [
            (rng.choice(USERS), f"g{seed}k{label + i}", f"g{seed}x{label + i}")
            for i in range(burst)
        ]
        label += burst
        errors = run_threads(
            lambda i: committer.commit(
                jobs[i][0],
                append_script(jobs[i][2]),
                idempotency_key=jobs[i][1],
            ),
            burst,
        )
        assert not any(errors), (seed, errors)
        for _, key, name in jobs:
            acked[key] = name

    # The doomed group: every member errors, none is acknowledged.
    point = rng.choice(GROUP_KILL_POINTS)
    burst = rng.randint(1, 4)
    jobs = [
        (rng.choice(USERS), f"g{seed}k{label + i}", f"g{seed}x{label + i}")
        for i in range(burst)
    ]
    label += burst
    faults.arm(point, after=0)
    try:
        errors = run_threads(
            lambda i: committer.commit(
                jobs[i][0],
                append_script(jobs[i][2]),
                idempotency_key=jobs[i][1],
            ),
            burst,
        )
    finally:
        faults.disarm()
    assert all(errors), (seed, point, errors)
    for user, key, name in jobs:
        unknown[key] = (user, name)

    # Planned switchover semantics: the primary "died" after (or
    # during) the fsync, so its stats may still probe clean -- the
    # operator forces the promotion.
    promoted, _ = promote_with_crashes(rng, supervisor, 0.0, force=True)

    # Invariant 3, grouped flavor: the deposed primary's committer
    # refuses the whole next group at the stale epoch.
    (error,) = run_threads(
        lambda i: committer.commit(
            "w1", append_script("zombie"), idempotency_key=f"g{seed}z"
        ),
        1,
    )
    assert isinstance(error, StaleEpochError), (seed, error)

    # Retry the doomed group's members under their original keys.
    deduped = 0
    for key, (retry_user, retry_name) in unknown.items():
        result = router.execute(
            retry_user, append_script(retry_name), idempotency_key=key
        )
        if getattr(result, "deduped", False):
            deduped += 1
        acked[key] = retry_name

    settle_and_check(seed, router, promoted, acked)
    return point, deduped, len(unknown)


def test_failover_mid_group_commit_40_seeds(tmp_path):
    late_ack_members = late_ack_deduped = 0
    for seed in range(40):
        point, deduped, members = run_grouped_schedule(
            seed, tmp_path / f"g{seed}"
        )
        if point == "old-primary-late-ack":
            late_ack_members += members
            late_ack_deduped += deduped
    # In the late-ack window the group *was* durable: the promoted
    # primary replayed it, so every retry must have been answered from
    # the rebuilt dedup ledger -- exactly-once, not reapplication.
    assert late_ack_members > 0
    assert late_ack_deduped == late_ack_members
