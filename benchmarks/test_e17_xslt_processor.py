"""E17 (added): the XSLT-based security processor.

The paper's conclusion describes an XSLT security processor built on
the model.  This bench measures the pipeline the conclusion proposes:
compile a user's permissions into a stylesheet (once per policy
change), then transform the source per request -- against the baseline
of materializing the view directly.

Rows: stage | time.  The interesting numbers are (a) compilation is
cheap and proportional to the number of pruned/RESTRICTED boundary
nodes, not the document size, and (b) a precompiled-stylesheet
transform is competitive with direct view materialization.
"""

import pytest

from conftest import synthetic_hospital

from repro.xmltree import serialize
from repro.xslt import apply_stylesheet, view_stylesheet

PATIENTS = 200


@pytest.fixture(scope="module")
def db():
    return synthetic_hospital(PATIENTS)


@pytest.fixture(scope="module")
def secretary_view(db):
    return db.build_view("beaufort")


def test_e17_stylesheet_compilation(benchmark, db, secretary_view):
    def run():
        return view_stylesheet(secretary_view)

    stylesheet = benchmark(run)
    # copy-through + one rewrite template per RESTRICTED diagnosis text.
    assert len(stylesheet) == 1 + PATIENTS


def test_e17_transform_with_precompiled_stylesheet(
    benchmark, db, secretary_view
):
    stylesheet = view_stylesheet(secretary_view)

    def run():
        return apply_stylesheet(stylesheet, db.document)

    output = benchmark(run)
    assert serialize(output) == serialize(secretary_view.doc)


def test_e17_direct_view_materialization_baseline(benchmark, db):
    def run():
        return db.build_view("beaufort")

    view = benchmark(run)
    assert len(view.restricted) == PATIENTS


def test_e17_full_pipeline_per_request(benchmark, db):
    """Worst case: derive perms + compile + transform on every request."""

    def run():
        view = db.build_view("beaufort")
        return apply_stylesheet(view_stylesheet(view), db.document)

    output = benchmark(run)
    assert "RESTRICTED" in serialize(output)
