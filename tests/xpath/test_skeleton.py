"""Static path skeletons: stability proofs and the chain matcher.

The two contracts the incremental permission maintenance rests on:

- ``may_intersect`` returning False must *prove* the selection stable
  under a commit touching those labels;
- ``matches`` on a patchable skeleton must agree with the evaluator on
  every node of every document.
"""

import pytest
from hypothesis import given, settings

from repro.xmltree import XMLDocument
from repro.xmltree.labels import DOCUMENT_ID
from repro.xpath.engine import XPathEngine
from repro.xpath.skeleton import analyze_path

from tests.strategies import documents

ENGINE = XPathEngine(lone_variable_name_test=True, star_matches_text=True)

#: (path, expected labels or None=unbounded, expected patchable)
CASES = [
    ("//sickness", {"sickness"}, True),
    ("/patients/patient", {"patients", "patient"}, True),
    ("/a/descendant-or-self::b", {"a", "b"}, True),
    ("//a/descendant::b", {"a", "b"}, True),
    ("/patients/*/descendant-or-self::*", None, True),
    ("//*", None, True),
    ("//text()", None, True),
    ("//node()", None, True),
    ("//*[name()='d']", None, False),  # predicate: opaque to patching
    ("//a[b]", None, False),
    ("/patients/*[$USER]/descendant-or-self::*", None, False),
]


@pytest.mark.parametrize("path,labels,patchable", CASES)
def test_static_analysis(path, labels, patchable):
    skeleton = analyze_path(path)
    assert skeleton is not None
    assert skeleton.labels == (None if labels is None else frozenset(labels))
    assert skeleton.patchable is patchable


def test_union_keeps_labels_but_not_patchability():
    skeleton = analyze_path("//a | //b")
    assert skeleton is not None
    assert skeleton.labels == frozenset({"a", "b"})
    assert not skeleton.patchable


def test_opaque_expressions_analyze_to_none():
    assert analyze_path("count(//a)") is None
    assert analyze_path("not-even-xpath((") is None


def test_bounded_skeleton_disjointness():
    skeleton = analyze_path("//sickness")
    assert not skeleton.may_intersect({"diagnosis", "note"})
    assert skeleton.may_intersect({"sickness"})
    # Unbounded skeletons can never rule an intersection out.
    assert analyze_path("//*").may_intersect({"anything"})


def test_sibling_axes_with_wildcards_stay_unbounded():
    # //node()/following-sibling::c can gain selections when ANY node
    # is inserted before a c, so its label set must not be {c}.
    skeleton = analyze_path("//node()/following-sibling::c")
    assert skeleton is None or skeleton.labels is None


PATCHABLE_PATHS = [
    "/a",
    "/a/b",
    "//a",
    "//b/c",
    "//a/*",
    "//text()",
    "//a/text()",
    "//node()",
    "/a/descendant-or-self::*",
    "/a/descendant-or-self::b",
    "//a/descendant::b",
    "/*",
    "//*",
    "/a/self::a",
    "/patients/descendant-or-self::node()",
]


@settings(max_examples=60, deadline=None)
@given(doc=documents(max_depth=4, max_children=3))
def test_matches_agrees_with_engine_everywhere(doc: XMLDocument):
    all_nodes = [DOCUMENT_ID] + list(doc.subtree(doc.root))
    for path in PATCHABLE_PATHS:
        skeleton = analyze_path(path)
        assert skeleton is not None and skeleton.patchable, path
        truth = set(ENGINE.select(doc, path))
        mine = {n for n in all_nodes if skeleton.matches(doc, n, True)}
        assert mine == truth, f"{path}: {mine ^ truth}"


def test_matches_refuses_non_patchable_skeletons():
    skeleton = analyze_path("//a[b]")
    doc = XMLDocument()
    doc.add_root("a")
    with pytest.raises(ValueError):
        skeleton.matches(doc, doc.root)
