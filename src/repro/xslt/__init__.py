"""Mini-XSLT engine and the XSLT-based security processor.

The paper's conclusion describes an XSLT-based security processor
built on the model; this package provides both the transformation
engine (:func:`apply_stylesheet`) and the compiler from derived
permissions to a view-producing stylesheet (:func:`view_stylesheet`).
"""

from .ast import (
    ApplyTemplates,
    AttributeNamed,
    Copy,
    ElementNamed,
    Instruction,
    Stylesheet,
    TemplateRule,
    TextLiteral,
    ValueOf,
)
from .engine import XSLTError, apply_stylesheet
from .security import match_path, view_stylesheet

__all__ = [
    "ApplyTemplates",
    "AttributeNamed",
    "Copy",
    "ElementNamed",
    "Instruction",
    "Stylesheet",
    "TemplateRule",
    "TextLiteral",
    "ValueOf",
    "XSLTError",
    "apply_stylesheet",
    "match_path",
    "view_stylesheet",
]
