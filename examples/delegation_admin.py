"""Administration day: ownership, grant option, cascading revoke.

The paper leaves its administration model out for space, pointing at
SQL's grant option ("in [10] we included the privilege to transfer
privileges", section 4.3).  This example runs the layer that fills that
gap (`repro.security.delegation`):

1. the hospital owner grants the head doctor read over the records
   *with grant option*;
2. the head doctor delegates to a visiting doctor;
3. the visiting doctor tries to delegate further and is refused (no
   grant option on her grant);
4. the owner revokes the head doctor's grant -- and the visiting
   doctor's access cascades away with it.

Run with::

    python examples/delegation_admin.py
"""

from repro import SecureXMLDatabase
from repro.security.delegation import AdministeredPolicy, DelegationError

RECORDS = """
<patients>
  <franck><diagnosis>tonsillitis</diagnosis></franck>
  <robert><diagnosis>pneumonia</diagnosis></robert>
</patients>
"""


def main() -> None:
    db = SecureXMLDatabase.from_xml(RECORDS)
    subjects = db.subjects
    subjects.add_user("director")  # the owner
    subjects.add_user("head_doctor")
    subjects.add_user("visiting_doctor")
    admin = AdministeredPolicy(subjects, owner="director", policy=db.policy)

    def show_access(user: str) -> None:
        xml = db.login(user).read_xml()
        print(f"  {user:16} sees: {xml if xml else '(nothing)'}")

    print("== 1. Owner grants the head doctor read, WITH GRANT OPTION ==")
    root_grant = admin.grant(
        "director", "read", "//node()", "head_doctor", grant_option=True
    )
    show_access("head_doctor")
    show_access("visiting_doctor")

    print("\n== 2. Head doctor delegates to the visiting doctor ==")
    admin.grant("head_doctor", "read", "//node()", "visiting_doctor")
    show_access("visiting_doctor")

    print("\n== 3. Visiting doctor tries to delegate further ==")
    try:
        admin.grant("visiting_doctor", "read", "//node()", "director")
    except DelegationError as exc:
        print(f"  REFUSED: {exc}")

    print("\n== Current delegation chain ==")
    for grant in admin.grants():
        via = f" (authority: grant #{grant.authority})" if grant.authority else ""
        option = " +GRANT OPTION" if grant.grant_option else ""
        print(f"  #{grant.grant_id}: {grant.grantor} -> "
              f"{grant.rule.subject}: {grant.rule.privilege} on "
              f"{grant.rule.path}{option}{via}")

    print("\n== 4. Owner revokes the head doctor's grant (CASCADE) ==")
    removed = admin.revoke("director", root_grant.grant_id)
    print(f"  revoked {len(removed)} grants "
          f"({', '.join('#' + str(g.grant_id) for g in removed)})")
    show_access("head_doctor")
    show_access("visiting_doctor")


if __name__ == "__main__":
    main()
