"""The XPath->Datalog compiler agrees with the procedural engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal import PathCompiler, UnsupportedPathError, document_theory
from repro.logic import DatalogEngine
from repro.xmltree import parse_xml
from repro.xpath import XPathEngine

from tests.strategies import RULE_PATHS, documents

PROCEDURAL = XPathEngine(lone_variable_name_test=True, star_matches_text=True)


def formal_select(doc, path, user=None):
    program = document_theory(doc)
    compiler = PathCompiler(program)
    predicate = compiler.compile(path, user=user)
    engine = DatalogEngine(program)
    return {nid for (nid,) in engine.query(predicate)}


class TestFixedPaths:
    def setup_method(self):
        self.doc = parse_xml(
            "<patients><franck><service>oto</service>"
            "<diagnosis>flu</diagnosis></franck>"
            "<robert><diagnosis>cold</diagnosis></robert></patients>"
        )

    @pytest.mark.parametrize(
        "path",
        [
            "/patients",
            "/patients/*",
            "//*",
            "//diagnosis",
            "//diagnosis/*",
            "//text()",
            "//node()",
            "/patients/franck/diagnosis",
            "/patients/descendant-or-self::*",
            "//*[name()='robert']",
        ],
    )
    def test_matches_procedural(self, path):
        formal = formal_select(self.doc, path)
        procedural = set(PROCEDURAL.select(self.doc, path))
        assert formal == procedural, path

    def test_user_variable(self):
        formal = formal_select(
            self.doc, "/patients/*[$USER]/descendant-or-self::*", user="robert"
        )
        procedural = set(
            PROCEDURAL.select(
                self.doc,
                "/patients/*[$USER]/descendant-or-self::*",
                variables={"USER": "robert"},
            )
        )
        assert formal == procedural
        assert len(formal) == 3  # robert, diagnosis, text

    def test_parent_axis(self):
        formal = formal_select(self.doc, "//diagnosis/..")
        procedural = set(PROCEDURAL.select(self.doc, "//diagnosis/.."))
        assert formal == procedural

    def test_self_axis(self):
        formal = formal_select(self.doc, "//franck/self::node()")
        procedural = set(PROCEDURAL.select(self.doc, "//franck/self::node()"))
        assert formal == procedural


class TestUnsupported:
    @pytest.mark.parametrize(
        "path",
        [
            "relative/path",
            "//a[1]",
            "//a[@id='1']",
            "//a | //b",
            "count(//a)",
            "//a/following-sibling::b",
            "//a[$OTHER]",
        ],
    )
    def test_rejected_with_clear_error(self, path):
        doc = parse_xml("<r/>")
        program = document_theory(doc)
        with pytest.raises(UnsupportedPathError):
            PathCompiler(program).compile(path, user="u")

    def test_user_path_without_user_binding(self):
        doc = parse_xml("<r/>")
        program = document_theory(doc)
        with pytest.raises(UnsupportedPathError):
            PathCompiler(program).compile("/r/*[$USER]", user=None)


@given(documents(), st.sampled_from(RULE_PATHS))
@settings(max_examples=120, deadline=None)
def test_differential_on_random_documents(doc, path):
    """For every compilable path: formal selection == procedural."""
    formal = formal_select(doc, path, user="u1")
    procedural = set(
        PROCEDURAL.select(doc, path, variables={"USER": "u1"})
    )
    assert formal == procedural
