"""Static enforcement: NFA decisions == resolver, zero materialization.

The enforcement ladder's top rung must be *invisible* except in cost:
``Session.can()`` and write checks answer identically whether they run
through the chain automata or the resolved permission table.  These
tests pin that equivalence on the paper's hospital database and assert
-- through the ``db.stats()`` counters -- that eligible probes never
evaluate a rule path, derive a table, or materialize a view.
"""

import pytest

from repro.core import hospital_database
from repro.security import Policy, SubjectHierarchy
from repro.security.database import SecureXMLDatabase
from repro.security.privileges import Privilege
from repro.security.static import StaticDecider, automata_eligible, decider_for
from repro.xmltree import parse_xml


@pytest.fixture
def db():
    return hospital_database()


def _fresh_static_db():
    """A database whose whole policy is automata-eligible."""
    doc = parse_xml(
        "<patients><patient><name>x</name><diagnosis>flu</diagnosis>"
        "</patient></patients>"
    )
    subjects = SubjectHierarchy()
    subjects.add_role("staff")
    subjects.add_user("alice", member_of="staff")
    subjects.add_user("bob", member_of="staff")
    policy = Policy(subjects)
    policy.grant("read", "//*", "staff")
    policy.deny("read", "//diagnosis/descendant-or-self::*", "staff")
    policy.grant("insert", "/patients", "staff")
    return SecureXMLDatabase(doc, subjects, policy)


class TestDecisionsMatchResolver:
    @pytest.mark.parametrize("user", ["laporte", "beaufort", "richard", "robert"])
    def test_can_agrees_with_table_everywhere(self, db, user):
        session = db.login(user)
        table = db.resolver.resolve(db.document, db.policy, user)
        for nid in db.document.all_nodes():
            for privilege in Privilege:
                assert session.can(privilege.value, nid) == table.holds(
                    nid, privilege
                ), (user, nid, privilege)

    def test_decisions_survive_commits(self, db):
        session = db.login("laporte")
        db.admin_update(
            '<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">'
            '<xupdate:append select="//diagnosis">'
            "<xupdate:element name=\"flu\"/></xupdate:append>"
            "</xupdate:modifications>"
        )
        table = db.resolver.resolve(db.document, db.policy, "laporte")
        for nid in db.document.all_nodes():
            assert session.can("read", nid) == table.holds(nid, Privilege.READ)

    def test_policy_mutation_changes_decisions(self, db):
        session = db.login("laporte")
        target = db.engine.select(db.document, "//diagnosis")[0]
        assert session.can("read", target)
        db.policy.deny("read", "//diagnosis/descendant-or-self::*", "staff")
        assert not session.can("read", target)


class TestZeroMaterialization:
    def test_eligible_probes_touch_nothing(self):
        db = _fresh_static_db()
        session = db.login("alice")
        for nid in db.document.all_nodes():
            for privilege in ("read", "insert", "delete"):
                session.can(privilege, nid)
        stats = db.stats()
        assert stats["static_decisions"] > 0
        assert stats["static_fallbacks"] == 0
        assert stats["path_evals"] == 0
        assert stats["full_resolves"] == 0
        assert stats["delta_resolves"] == 0
        assert stats["view_full_builds"] == 0

    def test_ineligible_lane_falls_back(self, db):
        # robert is a patient: his read lane contains the $USER rule.
        session = db.login("robert")
        session.can("read", next(iter(db.document.all_nodes())))
        stats = db.stats()
        assert stats["static_fallbacks"] > 0
        assert stats["full_resolves"] > 0  # the fallback derived a table

    def test_fallback_only_for_out_of_fragment_lanes(self, db):
        # robert's *insert* lane has no rules at all -- still eligible.
        session = db.login("robert")
        before = db.stats()["static_fallbacks"]
        assert not session.can("insert", next(iter(db.document.all_nodes())))
        assert db.stats()["static_fallbacks"] == before


class TestEligibilityTagging:
    def test_rule_eligibility(self, db):
        by_path = {rule.path: automata_eligible(rule) for rule in db.policy}
        assert by_path["//*"]
        assert by_path["//diagnosis/*"]
        assert by_path["/patients"]
        assert not by_path["/patients/*[$USER]/descendant-or-self::*"]

    def test_policy_eligibility_summary(self, db):
        assert db.policy.automata_eligible_rules() == tuple(
            r for r in db.policy if "$" not in r.path
        )
        eligibility = db.policy.static_eligibility("robert")
        assert eligibility[Privilege.READ] is False  # $USER rule
        assert eligibility[Privilege.INSERT] is True
        staff = db.policy.static_eligibility("laporte")
        assert all(staff.values())

    def test_deciders_shared_by_fingerprint(self, db):
        # laporte and any other pure-doctor would share; here compare
        # the same user twice and two users with different rules.
        a = decider_for(db.policy, "laporte", True)
        assert decider_for(db.policy, "laporte", True) is a
        assert decider_for(db.policy, "richard", True) is not a


class TestWriteChecks:
    def test_secure_writes_use_static_lane(self):
        db = _fresh_static_db()
        session = db.login("alice")
        from repro.xmltree import element
        from repro.xupdate.operations import Append, Remove

        result = session.execute(
            Append(path="/patients", tree=element("patient"))
        )
        assert result.fully_applied
        denied = session.execute(Remove(path="/patients/patient[1]"))
        assert denied.denials  # no delete rule anywhere
        stats = db.stats()
        assert stats["static_decisions"] > 0

    def test_write_denials_match_table_semantics(self, db):
        # beaufort (secretary) may insert under /patients but a doctor
        # may not -- the static lane must reproduce the axiom-18 answers.
        from repro.xmltree import element
        from repro.xupdate.operations import Append

        op = Append(path="/patients", tree=element("patient"))
        ok = db.login("beaufort").execute(op)
        assert ok.fully_applied
        refused = db.login("laporte").execute(op)
        assert refused.denials


class TestDeciderInternals:
    def test_closed_world_no_rule_means_deny(self):
        db = _fresh_static_db()
        decider = decider_for(db.policy, "alice", True)
        nid = next(iter(db.document.all_nodes()))
        granted, rule = decider.decide(db.document, nid, Privilege.DELETE)
        assert granted is False and rule is None

    def test_latest_rule_wins(self):
        db = _fresh_static_db()
        decider = decider_for(db.policy, "alice", True)
        diagnosis = db.engine.select(db.document, "//diagnosis")[0]
        granted, rule = decider.decide(db.document, diagnosis, Privilege.READ)
        assert granted is False  # the later deny overrides the grant
        assert rule is not None and rule.effect == "deny"

    def test_memo_tracks_document_mutation(self):
        db = _fresh_static_db()
        decider = decider_for(db.policy, "alice", True)
        doc = db.document.copy()
        nid = db.engine.select(doc, "//name")[0]
        assert decider.decide(doc, nid, Privilege.READ)[0] is True
        doc.relabel(nid, "diagnosis")  # bumps the mutation stamp
        granted, _ = decider.decide(doc, nid, Privilege.READ)
        assert granted is False  # not served from the stale memo
