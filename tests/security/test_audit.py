"""Audit log behaviour."""

import pytest

from repro.security import AuditLog, Privilege
from repro.xmltree import DOCUMENT_ID
from repro.xupdate import UpdateContent


class TestAuditLog:
    def test_records_are_sequenced(self):
        log = AuditLog()
        r1 = log.record("u", "Rename", "//a", DOCUMENT_ID, Privilege.UPDATE, True)
        r2 = log.record("u", "Rename", "//a", DOCUMENT_ID, Privilege.UPDATE, False, "no")
        assert r1.sequence < r2.sequence
        assert len(log) == 2

    def test_denials_filter(self):
        log = AuditLog()
        log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, False, "r")
        assert len(log.denials()) == 1
        assert not log.denials()[0].allowed

    def test_for_user_filter(self):
        log = AuditLog()
        log.record("alice", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        log.record("bob", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        assert len(log.for_user("alice")) == 1

    def test_clear(self):
        log = AuditLog()
        log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        log.clear()
        assert len(log) == 0

    def test_str_mentions_verdict(self):
        log = AuditLog()
        ok = log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        no = log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, False, "why")
        assert "ALLOW" in str(ok)
        assert "DENY" in str(no)
        assert "why" in str(no)


class TestDatabaseIntegration:
    def test_database_writes_are_audited(self, db):
        secretary = db.login("beaufort")
        secretary.execute(UpdateContent("/patients/franck/diagnosis", "x"))
        assert len(db.audit) > 0
        denials = db.audit.denials()
        assert denials
        assert all(r.user == "beaufort" for r in denials)

    def test_allowed_writes_recorded_too(self, db):
        doctor = db.login("laporte")
        doctor.execute(UpdateContent("/patients/franck/diagnosis", "flu"))
        allowed = [r for r in db.audit if r.allowed]
        assert allowed
        assert allowed[0].operation == "UpdateContent"


class TestAbortRecords:
    def test_record_abort_fields(self):
        log = AuditLog()
        entry = log.record_abort(
            user="u",
            operation="Remove",
            path="//a",
            reason="injected fault",
            operation_index=2,
            rolled_back=2,
        )
        assert entry.event == "abort"
        assert not entry.allowed
        assert entry.rolled_back == 2
        assert entry.node is None and entry.privilege is None
        assert "aborted at operation 2" in entry.reason

    def test_aborts_filter(self):
        log = AuditLog()
        log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        log.record_abort(user="u", operation="Op", path="//a", reason="boom")
        assert len(log.aborts()) == 1
        assert len(log.denials()) == 1  # the abort counts as denied

    def test_abort_str_format(self):
        log = AuditLog()
        entry = log.record_abort(
            user="u", operation="Rename", path="//a", reason="x", rolled_back=3
        )
        text = str(entry)
        assert "ABORT" in text
        assert "rolled back 3" in text


class TestRejectionRecords:
    def test_record_rejected_fields(self):
        log = AuditLog()
        entry = log.record_rejected(
            user="u",
            operation="UpdateContent",
            path="//a",
            reason="in-flight budget of 4 exhausted",
            event="shed",
        )
        assert entry.event == "shed"
        assert not entry.allowed
        assert entry.node is None and entry.privilege is None
        assert "budget" in entry.reason

    def test_unknown_event_is_refused(self):
        log = AuditLog()
        with pytest.raises(ValueError):
            log.record_rejected(
                user="u", operation="Op", path="//a", reason="r", event="lost"
            )

    def test_rejections_filter(self):
        log = AuditLog()
        log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        log.record_rejected("u", "Op", "//a", "full", "shed")
        log.record_rejected("u", "Op", "//a", "late", "deadline")
        log.record_rejected("u", "Op", "//a", "raced", "retry-exhausted")
        assert len(log.rejections()) == 3
        assert [r.event for r in log.rejections("deadline")] == ["deadline"]
        assert len(log.denials()) == 3  # rejections count as denied

    def test_rejection_str_format(self):
        log = AuditLog()
        entry = log.record_rejected("u", "query", "", "budget spent", "deadline")
        text = str(entry)
        assert "REJECT[deadline]" in text
        assert "budget spent" in text

    def test_every_rejection_event_is_accepted(self):
        from repro.security.audit import REJECTION_EVENTS

        log = AuditLog()
        for event in REJECTION_EVENTS:
            log.record_rejected("u", "Op", "//a", "r", event)
        assert len(log.rejections()) == len(REJECTION_EVENTS)


class TestServingRejectionsAreAudited:
    """Shed, timed-out and retry-exhausted requests land in the
    database's audit log (ISSUE 4 satellite)."""

    def test_shed_request_is_audited(self, db):
        from repro.errors import OverloadError
        from repro.serving import DatabaseServer

        server = DatabaseServer(db, max_in_flight=1, overload="shed")
        server.admission.acquire()  # occupy the whole budget
        try:
            with pytest.raises(OverloadError):
                server.query("laporte", "count(//*)")
        finally:
            server.admission.release()
        records = db.audit.rejections("shed")
        assert len(records) == 1
        assert records[0].user == "laporte"
        assert records[0].operation == "query"

    def test_timed_out_request_is_audited(self, db):
        from repro.errors import DeadlineExceeded
        from repro.serving import DatabaseServer

        server = DatabaseServer(db)
        with pytest.raises(DeadlineExceeded):
            server.execute(
                "laporte",
                UpdateContent("/patients/franck/diagnosis", "flu"),
                deadline=0.0,
            )
        records = db.audit.rejections("deadline")
        assert records
        assert records[-1].user == "laporte"
        assert records[-1].operation == "UpdateContent"

    def test_retry_exhausted_request_is_audited(self, db, monkeypatch):
        from repro.errors import ConcurrentUpdateError, RetryExhausted
        from repro.serving import DatabaseServer, RetryPolicy

        server = DatabaseServer(
            db,
            retry=RetryPolicy(max_attempts=2, base=0.0001, cap=0.0001),
            sleep=lambda s: None,
        )
        session = server.session("laporte")
        monkeypatch.setattr(
            session,
            "execute",
            lambda *a, **k: (_ for _ in ()).throw(
                ConcurrentUpdateError("raced")
            ),
        )
        with pytest.raises(RetryExhausted):
            server.execute(
                "laporte", UpdateContent("/patients/franck/diagnosis", "flu")
            )
        records = db.audit.rejections("retry-exhausted")
        assert len(records) == 1
        assert records[0].user == "laporte"
        assert "2 attempts" in records[0].reason
