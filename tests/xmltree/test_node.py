"""Node model unit tests."""

from fractions import Fraction

import pytest

from repro.xmltree import DOCUMENT_ID, Node, NodeKind, RESTRICTED


NID = DOCUMENT_ID.child(Fraction(1))


class TestNode:
    def test_kind_predicates(self):
        assert Node(NID, NodeKind.ELEMENT, "a").is_element
        assert Node(NID, NodeKind.TEXT, "t").is_text
        assert Node(NID, NodeKind.ATTRIBUTE, "k", "v").is_attribute
        assert Node(DOCUMENT_ID, NodeKind.DOCUMENT, "/").is_document

    def test_fact_projection(self):
        node = Node(NID, NodeKind.ELEMENT, "patients")
        assert node.fact() == (NID, "patients")

    def test_relabelled_preserves_identity_and_kind(self):
        node = Node(NID, NodeKind.ELEMENT, "a")
        renamed = node.relabelled("b")
        assert renamed.nid == NID
        assert renamed.kind is NodeKind.ELEMENT
        assert renamed.label == "b"
        assert node.label == "a"  # original untouched (frozen)

    def test_string_value_by_kind(self):
        assert Node(NID, NodeKind.TEXT, "hello").string_value() == "hello"
        assert Node(NID, NodeKind.ATTRIBUTE, "k", "v").string_value() == "v"
        assert Node(NID, NodeKind.COMMENT, "c").string_value() == "c"
        assert Node(NID, NodeKind.ELEMENT, "a").string_value() == ""

    def test_frozen(self):
        node = Node(NID, NodeKind.ELEMENT, "a")
        with pytest.raises(Exception):
            node.label = "b"  # type: ignore[misc]

    def test_restricted_constant(self):
        assert RESTRICTED == "RESTRICTED"
