"""Differential properties of incremental view maintenance.

The serving layer's contract: a view served from the shared cache --
whether a hit, a facade, or an incrementally patched materialization --
is *fact-for-fact identical* to deriving the view from scratch with
:class:`ViewBuilder` (axioms 15-17) against the current document and
policy.  Patching is an optimization; these properties make it
unobservable, across random documents, random policies (with and
without ``$USER``), random update scripts, and every fault-harness
kill-point.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UpdateAborted
from repro.security import SecureXMLDatabase, SubjectHierarchy
from repro.security.view import ViewBuilder
from repro.testing.faults import KILL_POINTS, InjectedFault, inject
from repro.xmltree import element, serialize, text
from repro.xupdate import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
    XUpdateError,
)

from repro.xmltree.document import DocumentError

from tests.strategies import (
    LABELS,
    PRIVILEGES,
    RULE_PATHS,
    build_policy,
    documents,
    fragments,
    storable,
)

#: Users deliberately named after document labels so ``$USER``-predicated
#: rule paths actually select nodes (lone ``[$USER]`` reads
#: ``[name()=$USER]``).
USERS = ("a", "d")

#: Paths for random update operations -- absolute, document-node-safe.
OP_PATHS = (
    "/*",
    "//a",
    "//b",
    "//a/*",
    "//c",
    "//diagnosis",
    "//b/c",
    "//text()",
)


def build_label_subjects() -> SubjectHierarchy:
    subjects = SubjectHierarchy()
    subjects.add_role("r1")
    for user in USERS:
        subjects.add_user(user, member_of="r1")
    return subjects


@st.composite
def update_operations(draw):
    """One random XUpdate operation within the supported fragment."""
    kind = draw(st.sampled_from(("rename", "update", "append", "before", "after", "remove")))
    path = draw(st.sampled_from(OP_PATHS))
    if kind == "rename":
        return Rename(path, draw(st.sampled_from(LABELS)))
    if kind == "update":
        return UpdateContent(path, draw(st.sampled_from(("x", "y", "zz"))))
    fragment = draw(fragments(max_depth=2, max_children=2))
    if kind == "append":
        return Append(path, fragment)
    if kind == "before":
        return InsertBefore(path, fragment)
    if kind == "after":
        return InsertAfter(path, fragment)
    return Remove(path)


@st.composite
def label_policy_rules(draw, max_rules: int = 6):
    """Random rule tuples over the label-named subject hierarchy."""
    n = draw(st.integers(min_value=0, max_value=max_rules))
    return [
        (
            draw(st.sampled_from(("accept", "deny"))),
            draw(st.sampled_from(PRIVILEGES)),
            draw(st.sampled_from(RULE_PATHS)),
            draw(st.sampled_from(USERS + ("r1",))),
        )
        for _ in range(n)
    ]


@st.composite
def maintained_databases(draw):
    """A random database, optionally with a ``$USER``-dependent rule."""
    doc = draw(documents(max_depth=3, max_children=3).filter(storable))
    subjects = build_label_subjects()
    policy = build_policy(subjects, draw(label_policy_rules()))
    if draw(st.booleans()):
        policy.grant("read", "//*[$USER]/descendant-or-self::*", "r1")
    if draw(st.booleans()):
        policy.grant("position", "/*", "r1")
    return SecureXMLDatabase(doc, subjects, policy)


def assert_served_equals_scratch(db: SecureXMLDatabase) -> None:
    """The core differential: cache-served view == from-scratch build."""
    builder = ViewBuilder()  # fresh resolver: no shared cache state
    for user in USERS:
        served = db.build_view(user)
        scratch = builder.build(db.document, db.policy, user)
        assert served.user == user
        assert served.facts() == scratch.facts()
        assert served.restricted == scratch.restricted
        assert serialize(served.doc) == serialize(scratch.doc)
        for privilege in ("read", "position", "update"):
            from repro.security import Privilege

            p = Privilege.parse(privilege)
            assert served.permissions.nodes_with(p) == scratch.permissions.nodes_with(p)


@settings(max_examples=40, deadline=None)
@given(
    db=maintained_databases(),
    ops=st.lists(update_operations(), min_size=1, max_size=4),
)
def test_patched_views_equal_scratch_after_admin_commits(db, ops):
    for user in USERS:
        db.build_view(user)  # warm the cache so later serves are patches
    for op in ops:
        try:
            db.admin_update(op)
        except (XUpdateError, UpdateAborted, DocumentError):
            continue  # op not applicable to this document shape
        assert_served_equals_scratch(db)


@settings(max_examples=25, deadline=None)
@given(
    db=maintained_databases(),
    ops=st.lists(update_operations(), min_size=1, max_size=3),
)
def test_patched_views_equal_scratch_after_session_commits(db, ops):
    sessions = {user: db.login(user) for user in USERS}
    for session in sessions.values():
        session.view()
    for index, op in enumerate(ops):
        user = USERS[index % len(USERS)]
        try:
            sessions[user].execute(op)  # non-strict: partial application
        except (XUpdateError, UpdateAborted, DocumentError):
            continue
        assert_served_equals_scratch(db)


class TestKillPoints:
    """Every fault-harness kill-point, against the shared cache.

    An aborted script must leave served views identical to their
    pre-script state; whether or not the point fired, serving must
    still equal the from-scratch derivation.
    """

    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_served_views_stay_correct(self, point):
        from repro.core import hospital_database

        db = hospital_database()
        users = ("laporte", "beaufort", "richard", "robert")
        before = {u: db.build_view(u).fingerprint() for u in users}
        script = UpdateScript(
            [
                UpdateContent("/patients/franck/diagnosis", "flu"),
                Append("//diagnosis", element("note", text("checked"))),
                Remove("/patients/robert/diagnosis/text()"),
            ]
        )
        doctor = db.login("laporte")
        aborted = False
        with inject(point, after=1):
            try:
                doctor.execute(script, strict=True)
            except UpdateAborted as exc:
                assert isinstance(exc.__cause__, InjectedFault)
                aborted = True
        if aborted:
            # Nothing committed: served views are byte-identical.
            for user in users:
                assert db.build_view(user).fingerprint() == before[user]
        builder = ViewBuilder()
        for user in users:
            served = db.build_view(user)
            scratch = builder.build(db.document, db.policy, user)
            assert served.facts() == scratch.facts()
            assert served.restricted == scratch.restricted
