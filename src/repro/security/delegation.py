"""Administration model: ownership, grant option, cascading revoke.

The paper leaves its administration model out for space ("we cannot
represent the security administration model ... We cannot also
represent any kind of delegation mechanism, whereas in [10] we included
the privilege to transfer privileges.  This privilege is referred to as
the *grant option* in SQL", section 4.3).  This module supplies that
missing layer in the SQL style the paper points at:

- the database has an **owner** who may issue any rule;
- a grant may carry the **grant option**, authorizing the grantee to
  re-grant the *same* (privilege, path) further;
- **revocation cascades**: revoking a grant removes its policy rule and
  recursively revokes every grant whose authority derived from it,
  exactly like SQL's ``REVOKE ... CASCADE``.

Scope note: authority matching is on the exact (privilege, path) pair.
Deciding whether one XPath *contains* another is far beyond the paper
(and undecidable for full XPath), so a grantee holding the option on
``//a`` may re-grant ``//a`` but not ``//a/b`` -- the conservative,
sound choice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .policy import ACCEPT, DENY, Policy, PolicyError, SecurityRule
from .privileges import Privilege
from .subjects import SubjectHierarchy

__all__ = ["DelegationError", "Grant", "AdministeredPolicy"]


class DelegationError(PermissionError):
    """The actor lacks the authority for the attempted administration."""


@dataclass(frozen=True)
class Grant:
    """One administrative act: who granted what to whom, under which
    authority.

    Attributes:
        grant_id: stable identifier, used for revocation.
        grantor: the subject who issued the grant.
        rule: the policy rule this grant installed.
        grant_option: whether the grantee may re-grant the same
            (privilege, path).
        authority: the grant_id whose option authorized this grant;
            None when the grantor is the owner.
    """

    grant_id: int
    grantor: str
    rule: SecurityRule
    grant_option: bool
    authority: Optional[int]


class AdministeredPolicy:
    """A :class:`Policy` front end enforcing administrative authority.

    Args:
        subjects: the subject hierarchy.
        owner: the owning subject; only the owner holds unconditional
            administrative power.
        policy: an existing policy to administer (a fresh one if
            omitted).  Rules already present are treated as issued by
            the owner.
    """

    def __init__(
        self,
        subjects: SubjectHierarchy,
        owner: str,
        policy: Optional[Policy] = None,
    ) -> None:
        if owner not in subjects:
            raise DelegationError(f"unknown owner {owner!r}")
        self._subjects = subjects
        self._owner = owner
        self._policy = policy if policy is not None else Policy(subjects)
        self._grants: Dict[int, Grant] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def owner(self) -> str:
        return self._owner

    @property
    def policy(self) -> Policy:
        """The underlying policy (read it; administer through me)."""
        return self._policy

    def grants(self) -> List[Grant]:
        """All live grants, in issue order."""
        return [self._grants[g] for g in sorted(self._grants)]

    def grants_by(self, grantor: str) -> List[Grant]:
        """Live grants this grantor issued."""
        return [g for g in self.grants() if g.grantor == grantor]

    def grants_to(self, subject: str) -> List[Grant]:
        """Live grants whose rule targets this subject."""
        return [g for g in self.grants() if g.rule.subject == subject]

    # ------------------------------------------------------------------
    # authority
    # ------------------------------------------------------------------
    def _authority_for(
        self, actor: str, privilege: Privilege, path: str
    ) -> Optional[int]:
        """The grant id authorizing ``actor`` on (privilege, path).

        The owner needs no authority (returns None); anyone else needs
        a live grant-option grant for the same pair, held directly or
        through a role they belong to (isa closure).
        """
        if actor == self._owner:
            return None
        held_as = self._subjects.ancestors(actor)
        for grant in self.grants():
            if (
                grant.grant_option
                and grant.rule.effect == ACCEPT
                and grant.rule.privilege is privilege
                and grant.rule.path == path
                and grant.rule.subject in held_as
            ):
                return grant.grant_id
        raise DelegationError(
            f"{actor!r} holds no grant option for "
            f"({privilege}, {path!r}) and is not the owner"
        )

    # ------------------------------------------------------------------
    # administration verbs
    # ------------------------------------------------------------------
    def grant(
        self,
        actor: str,
        privilege: "str | Privilege",
        path: str,
        subject: str,
        grant_option: bool = False,
    ) -> Grant:
        """Issue an accept rule on behalf of ``actor``.

        Raises:
            DelegationError: if the actor lacks authority.
            PolicyError: if the rule itself is invalid.
        """
        privilege = Privilege.parse(privilege)
        authority = self._authority_for(actor, privilege, path)
        rule = self._policy.grant(privilege, path, subject)
        grant = Grant(next(self._ids), actor, rule, grant_option, authority)
        self._grants[grant.grant_id] = grant
        return grant

    def deny(
        self,
        actor: str,
        privilege: "str | Privilege",
        path: str,
        subject: str,
    ) -> Grant:
        """Issue a deny rule on behalf of ``actor``.

        Denies follow the same authority requirement as grants: being
        able to give a privilege away is what authorizes taking it
        back (the paper's priority mechanism handles the conflict).
        """
        privilege = Privilege.parse(privilege)
        authority = self._authority_for(actor, privilege, path)
        rule = self._policy.deny(privilege, path, subject)
        grant = Grant(next(self._ids), actor, rule, False, authority)
        self._grants[grant.grant_id] = grant
        return grant

    def revoke(self, actor: str, grant_id: int) -> List[Grant]:
        """Revoke a grant, cascading through dependent delegations.

        Only the grant's grantor or the owner may revoke it.  Returns
        every grant removed (the requested one first).

        Raises:
            DelegationError: unknown grant or insufficient authority.
        """
        grant = self._grants.get(grant_id)
        if grant is None:
            raise DelegationError(f"no grant #{grant_id}")
        if actor != self._owner and actor != grant.grantor:
            raise DelegationError(
                f"{actor!r} may not revoke grant #{grant_id} "
                f"issued by {grant.grantor!r}"
            )
        removed: List[Grant] = []
        self._revoke_recursive(grant_id, removed)
        return removed

    def _revoke_recursive(self, grant_id: int, removed: List[Grant]) -> None:
        grant = self._grants.pop(grant_id, None)
        if grant is None:
            return
        try:
            self._policy.revoke(grant.rule)
        except PolicyError:  # pragma: no cover - rule already gone
            pass
        removed.append(grant)
        dependents = [
            g.grant_id
            for g in list(self._grants.values())
            if g.authority == grant_id
        ]
        for dep in dependents:
            self._revoke_recursive(dep, removed)
