"""Instruction set for the mini-XSLT engine.

The subset needed by the security processor (and useful generally):
template rules with match patterns and priorities, and the sequence
constructors ``copy``, ``apply-templates``, ``element``, ``attribute``,
``text`` and ``value-of``.  This mirrors XSLT 1.0's core processing
model [5] without the long tail (modes, keys, sorting, xsl:if/choose
are out of scope -- the security processor never emits them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "Instruction",
    "ApplyTemplates",
    "Copy",
    "ElementNamed",
    "AttributeNamed",
    "TextLiteral",
    "ValueOf",
    "TemplateRule",
    "Stylesheet",
]


class Instruction:
    """Base class for sequence-constructor instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class ApplyTemplates(Instruction):
    """``<xsl:apply-templates select="..."/>``.

    The default select of ``node()`` processes attribute nodes too in
    this engine (a deliberate simplification: the security processor
    must access-control attributes like everything else).
    """

    select: str = "node()"


@dataclass(frozen=True)
class Copy(Instruction):
    """``<xsl:copy>``: shallow-copy the context node, then run ``body``
    to produce its content."""

    body: Tuple[Instruction, ...] = (ApplyTemplates(),)


@dataclass(frozen=True)
class ElementNamed(Instruction):
    """``<xsl:element name="...">``: emit an element with a fixed name
    (how the security processor rewrites labels to RESTRICTED)."""

    name: str
    body: Tuple[Instruction, ...] = (ApplyTemplates(),)


@dataclass(frozen=True)
class AttributeNamed(Instruction):
    """``<xsl:attribute name="...">value</xsl:attribute>`` with a fixed
    value."""

    name: str
    value: str


@dataclass(frozen=True)
class TextLiteral(Instruction):
    """Emit fixed text."""

    value: str


@dataclass(frozen=True)
class ValueOf(Instruction):
    """``<xsl:value-of select="..."/>``: emit the string value."""

    select: str


@dataclass(frozen=True)
class TemplateRule:
    """One ``<xsl:template match="..." priority="...">``.

    Empty ``body`` means "produce nothing" -- the pruning template.
    """

    match: str
    body: Tuple[Instruction, ...] = ()
    priority: float = 0.0

    def __str__(self) -> str:
        return f"template(match={self.match!r}, priority={self.priority})"


@dataclass(frozen=True)
class Stylesheet:
    """An ordered collection of template rules.

    Conflict resolution: highest priority wins; among equal priorities
    the *last* rule in document order wins (XSLT 1.0 recoverable-error
    behaviour).  Built-in rules (copy-through) apply when nothing
    matches.
    """

    templates: Tuple[TemplateRule, ...]

    def __len__(self) -> int:
        return len(self.templates)
