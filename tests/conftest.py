"""Shared fixtures: the paper's running example and common engines."""

import pytest

from repro.core import (
    hospital_database,
    hospital_policy,
    hospital_subjects,
    medical_document,
)
from repro.security import PermissionResolver, ViewBuilder
from repro.xpath import XPathEngine
from repro.xupdate import XUpdateExecutor


@pytest.fixture(autouse=True)
def _reset_faults():
    """Disarm every kill-point around each test (fault-suite hygiene)."""
    from repro.testing.faults import faults

    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def doc():
    """The figure-2 medical document, fresh per test."""
    return medical_document()


@pytest.fixture
def subjects():
    """The figure-3 subject hierarchy."""
    return hospital_subjects()


@pytest.fixture
def policy(subjects):
    """The equation-13 policy bound to the figure-3 subjects."""
    return hospital_policy(subjects)


@pytest.fixture
def db():
    """The fully assembled hospital database."""
    return hospital_database()


@pytest.fixture
def engine():
    """A strict XPath 1.0 engine (no paper-compat extensions)."""
    return XPathEngine()


@pytest.fixture
def paper_engine():
    """The paper-compat engine the security layer uses."""
    return XPathEngine(lone_variable_name_test=True, star_matches_text=True)


@pytest.fixture
def executor(paper_engine):
    """An unsecured XUpdate executor over the paper-compat engine."""
    return XUpdateExecutor(paper_engine)


@pytest.fixture
def resolver(paper_engine):
    return PermissionResolver(paper_engine)


@pytest.fixture
def view_builder(resolver):
    return ViewBuilder(resolver)
