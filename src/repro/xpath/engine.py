"""The :class:`XPathEngine` facade and the paper's ``xpath/3`` predicate.

The engine bundles a function library and the paper-compat options, and
exposes the two operations the rest of the system needs:

- :meth:`XPathEngine.evaluate` -- full XPath evaluation to any value
  type (used by queries);
- :meth:`XPathEngine.select` -- node-set selection (used everywhere a
  PATH parameter appears in the paper);
- :meth:`XPathEngine.xpath_facts` -- the logical reading
  ``xpath(p, n, v)`` of section 3.4: the set of (path, identifier,
  label) triples a path derives, consumed by the formal layer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from ..xmltree.document import XMLDocument
from ..xmltree.labels import DOCUMENT_ID, NodeId
from .ast import Expr
from .compiler import CompiledXPath, compile_expr
from .evaluator import Context, XPathEvaluationError, evaluate
from .functions import CORE_FUNCTIONS, XPathFunction
from .parser import parse_xpath
from .values import NodeSet, XPathValue, is_node_set

__all__ = ["XPathEngine"]

#: Per-engine compiled-evaluator cache bound (LRU eviction beyond this).
_COMPILED_CACHE_SIZE = 1024


class XPathEngine:
    """Evaluates XPath 1.0 expressions against documents.

    Args:
        extra_functions: additional functions merged over the core
            library (same call signature as core functions).
        lone_variable_name_test: enable the paper-compat reading of a
            lone ``[$var]`` predicate as ``[name() = $var]`` (see
            :mod:`repro.xpath.evaluator`).  The security layer turns
            this on so the paper's example policy works verbatim.
        star_matches_text: enable the paper-compat reading of a lone
            ``*`` name test as matching text and comment nodes too (the
            paper's policy uses ``//*`` to cover text content; see
            :mod:`repro.xpath.evaluator`).
    """

    def __init__(
        self,
        extra_functions: Optional[Mapping[str, XPathFunction]] = None,
        lone_variable_name_test: bool = False,
        star_matches_text: bool = False,
    ) -> None:
        functions: Dict[str, XPathFunction] = dict(CORE_FUNCTIONS)
        if extra_functions:
            functions.update(extra_functions)
        self._functions = functions
        self._lone_variable_name_test = lone_variable_name_test
        self._star_matches_text = star_matches_text
        self._compiled: "OrderedDict[str, CompiledXPath]" = OrderedDict()
        self._compiled_lock = threading.Lock()

    @property
    def star_matches_text(self) -> bool:
        """Whether the paper-compat lone-``*`` reading is enabled (the
        static path analysis in :mod:`repro.xpath.skeleton` must mirror
        the evaluator's configuration)."""
        return self._star_matches_text

    @property
    def lone_variable_name_test(self) -> bool:
        """Whether the paper-compat ``[$var]`` reading is enabled."""
        return self._lone_variable_name_test

    def _context(
        self,
        doc: XMLDocument,
        context_node: Optional[NodeId],
        variables: Optional[Mapping[str, XPathValue]],
    ) -> Context:
        return Context(
            doc=doc,
            node=context_node if context_node is not None else DOCUMENT_ID,
            variables=dict(variables or {}),
            functions=self._functions,
            lone_variable_name_test=self._lone_variable_name_test,
            star_matches_text=self._star_matches_text,
        )

    def compile(self, path: str) -> Expr:
        """Parse (with caching) a path, surfacing syntax errors early."""
        return parse_xpath(path)

    def compile_evaluator(self, path: str) -> CompiledXPath:
        """Compile ``path`` into a reusable closure-pipeline evaluator.

        Compiled evaluators carry this engine's function library and
        paper-compat options, are cached per engine (LRU, bounded) and
        are safe to share across threads and documents -- the lxml
        pattern of compiling an XPath string once and reusing the
        evaluator object.  Under differential mode (``make fault``)
        every call re-checks the compiled result against the
        interpreter.
        """
        with self._compiled_lock:
            compiled = self._compiled.get(path)
            if compiled is not None:
                self._compiled.move_to_end(path)
                return compiled
        compiled = compile_expr(
            self.compile(path),
            lone_variable_name_test=self._lone_variable_name_test,
            star_matches_text=self._star_matches_text,
            path=path,
            context_factory=self._context,
        )
        with self._compiled_lock:
            existing = self._compiled.get(path)
            if existing is not None:
                self._compiled.move_to_end(path)
                return existing
            self._compiled[path] = compiled
            while len(self._compiled) > _COMPILED_CACHE_SIZE:
                self._compiled.popitem(last=False)
        return compiled

    def evaluate(
        self,
        doc: XMLDocument,
        path: str,
        context_node: Optional[NodeId] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> XPathValue:
        """Evaluate ``path`` to any XPath value (node-set, number, ...).

        Args:
            doc: document to query.
            path: XPath 1.0 expression.
            context_node: context node; defaults to the document node.
            variables: variable bindings such as ``{"USER": "robert"}``.
        """
        ctx = self._context(doc, context_node, variables)
        return evaluate(self.compile(path), ctx)

    def select(
        self,
        doc: XMLDocument,
        path: str,
        context_node: Optional[NodeId] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> NodeSet:
        """Evaluate ``path`` and require a node-set result.

        This is the PATH-parameter semantics used by XUpdate operations
        and security rules.

        Raises:
            XPathEvaluationError: if the expression yields a non-node-set.
        """
        value = self.evaluate(doc, path, context_node, variables)
        if not is_node_set(value):
            raise XPathEvaluationError(
                f"path {path!r} evaluated to {type(value).__name__}, "
                "expected a node-set"
            )
        return value

    def xpath_facts(
        self,
        doc: XMLDocument,
        path: str,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> Set[Tuple[str, NodeId, str]]:
        """The paper's ``xpath(p, n, v)`` fact set for one path.

        Reads "node with label v identified by number n is addressed by
        path p" (section 3.4).
        """
        return {
            (path, nid, doc.label(nid))
            for nid in self.select(doc, path, variables=variables)
        }
