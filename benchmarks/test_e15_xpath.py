"""E15 (added): XPath engine micro-benchmarks by construct class.

Rows: one benchmark per construct family (axis walks, predicates,
functions, unions) over a synthetic 800-patient document -- the query
workload the security layer generates when evaluating policies.
"""

import pytest

from conftest import synthetic_hospital

from repro.xpath import XPathEngine

ENGINE = XPathEngine(lone_variable_name_test=True, star_matches_text=True)


@pytest.fixture(scope="module")
def doc():
    return synthetic_hospital(800).document


CASES = [
    ("child-chain", "/patients/patient00042/diagnosis", 1),
    ("descendant-name", "//diagnosis", 800),
    ("descendant-wildcard", "//*", None),
    ("text-nodes", "//text()", 1600),
    ("positional-predicate", "/patients/*[1]", 1),
    ("value-predicate", "//patient00042[service/text()]", 1),
    ("name-function", "//*[name()='patient00099']", 1),
    ("union", "//service | //diagnosis", 1600),
    ("count-aggregate", "count(//diagnosis)", 800.0),
    ("reverse-axis", "//patient00500/preceding-sibling::*[1]", 1),
]


@pytest.mark.parametrize("case,path,expected", CASES, ids=[c[0] for c in CASES])
def test_e15_xpath_constructs(benchmark, doc, case, path, expected):
    def run():
        return ENGINE.evaluate(doc, path)

    result = benchmark(run)
    if isinstance(expected, float):
        assert result == expected
    elif expected is not None:
        assert len(result) == expected
    else:
        assert len(result) > 800


def test_e15_policy_path_with_user_variable(benchmark, doc):
    """The rule-5 shape the resolver evaluates per user."""

    def run():
        return ENGINE.select(
            doc,
            "/patients/*[$USER]/descendant-or-self::*",
            variables={"USER": "patient00100"},
        )

    result = benchmark(run)
    assert len(result) == 5  # patient + service + text + diagnosis + text
