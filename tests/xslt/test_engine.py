"""Mini-XSLT engine unit tests."""

import pytest

from repro.xmltree import parse_xml, serialize
from repro.xslt import (
    ApplyTemplates,
    AttributeNamed,
    Copy,
    ElementNamed,
    Stylesheet,
    TemplateRule,
    TextLiteral,
    ValueOf,
    apply_stylesheet,
)


def transform(xml, *templates):
    doc = parse_xml(xml)
    return serialize(apply_stylesheet(Stylesheet(tuple(templates)), doc))


class TestBuiltinRules:
    def test_empty_stylesheet_yields_text_only(self):
        # Built-ins: elements recurse, text copies through.
        assert transform("<a><b>x</b>y</a>") == "xy"

    def test_attributes_dropped_without_parent_copy(self):
        # An attribute's built-in copies it, but with no element being
        # constructed there is nowhere to hang it; output is text only.
        assert transform('<a id="1">x</a>') == "x"


class TestCopyThrough:
    COPY_ALL = TemplateRule("//node() | //@*", (Copy(),), 0.0)

    def test_identity_transformation(self):
        xml = '<a id="1"><b>x</b><c/></a>'
        assert transform(xml, self.COPY_ALL) == xml

    def test_identity_preserves_order(self):
        xml = "<r><a/>mid<b/></r>"
        assert transform(xml, self.COPY_ALL) == xml


class TestTemplateSelection:
    def test_higher_priority_wins(self):
        out = transform(
            "<a><b/></a>",
            TemplateRule("//node() | //@*", (Copy(),), 0.0),
            TemplateRule("//b", (ElementNamed("B2"),), 5.0),
        )
        assert out == "<a><B2/></a>"

    def test_later_rule_wins_at_equal_priority(self):
        out = transform(
            "<a/>",
            TemplateRule("//a", (ElementNamed("first"),), 0.0),
            TemplateRule("//a", (ElementNamed("second"),), 0.0),
        )
        assert out == "<second/>"

    def test_empty_template_prunes(self):
        out = transform(
            "<a><b><deep/></b><c/></a>",
            TemplateRule("//node() | //@*", (Copy(),), 0.0),
            TemplateRule("//b", (), 5.0),
        )
        assert out == "<a><c/></a>"


class TestInstructions:
    def test_element_named_rewrites_label(self):
        out = transform(
            "<a><b>x</b></a>",
            TemplateRule("//node() | //@*", (Copy(),), 0.0),
            TemplateRule("//b", (ElementNamed("R", (ApplyTemplates(),)),), 5.0),
        )
        assert out == "<a><R>x</R></a>"

    def test_text_literal(self):
        out = transform(
            "<a><b>secret</b></a>",
            TemplateRule("//node() | //@*", (Copy(),), 0.0),
            TemplateRule("//b/text()", (TextLiteral("HIDDEN"),), 5.0),
        )
        assert out == "<a><b>HIDDEN</b></a>"

    def test_attribute_named(self):
        out = transform(
            '<a id="1"/>',
            TemplateRule("//node() | //@*", (Copy(),), 0.0),
            TemplateRule("//@*", (AttributeNamed("k", "v"),), 5.0),
        )
        assert out == '<a k="v"/>'

    def test_value_of(self):
        out = transform(
            "<a><b>x</b><b>y</b></a>",
            TemplateRule(
                "//a", (ElementNamed("sum", (ValueOf("b"),)),), 5.0
            ),
        )
        # value-of takes the first node's string value.
        assert out == "<sum>x</sum>"

    def test_apply_templates_with_select(self):
        out = transform(
            "<a><keep/><drop/></a>",
            TemplateRule("//node() | //@*", (Copy(),), 0.0),
            TemplateRule("//a", (Copy((ApplyTemplates("keep"),)),), 5.0),
        )
        assert out == "<a><keep/></a>"

    def test_source_not_mutated(self):
        doc = parse_xml("<a><b/></a>")
        before = serialize(doc)
        apply_stylesheet(
            Stylesheet((TemplateRule("//b", (ElementNamed("z"),), 1.0),)), doc
        )
        assert serialize(doc) == before
