"""Deadlines and the decorrelated-jitter backoff schedule."""

import random

import pytest

from repro.errors import DeadlineExceeded
from repro.serving import Deadline, RetryPolicy


class TestDeadline:
    def test_unbounded_never_expires(self, clock):
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired
        assert deadline.remaining() == float("inf")
        assert deadline.timeout() is None
        deadline.check("anything")  # must not raise

    def test_expires_on_the_clock(self, clock):
        deadline = Deadline(0.5, clock=clock)
        assert not deadline.expired
        clock.advance(0.4)
        assert deadline.remaining() == pytest.approx(0.1)
        clock.advance(0.1)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_remaining_never_negative(self, clock):
        deadline = Deadline(0.1, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0
        assert deadline.timeout() == 0.0

    def test_check_raises_with_phase_and_budget(self, clock):
        deadline = Deadline(0.25, clock=clock)
        clock.advance(0.3)
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check("script operation 3")
        assert "script operation 3" in str(err.value)
        assert "0.25" in str(err.value)
        assert err.value.budget == 0.25

    def test_zero_budget_is_born_expired(self, clock):
        deadline = Deadline(0.0, clock=clock)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base=0.5, cap=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.9)

    def test_first_delay_is_the_base(self):
        policy = RetryPolicy(base=0.002, cap=0.25)
        assert policy.next_delay(0.0, random.Random(1)) == 0.002

    def test_delays_stay_within_base_and_cap(self):
        policy = RetryPolicy(base=0.002, cap=0.25, multiplier=3.0)
        rng = random.Random(42)
        delay = 0.0
        for _ in range(200):
            delay = policy.next_delay(delay, rng)
            assert policy.base <= delay <= policy.cap

    def test_jitter_decorrelates_colliding_writers(self):
        # Two writers failing in lockstep must not back off in lockstep.
        policy = RetryPolicy()
        a = list(policy.delays(random.Random(1)))
        b = list(policy.delays(random.Random(2)))
        assert a != b

    def test_same_seed_same_schedule(self):
        policy = RetryPolicy()
        assert list(policy.delays(random.Random(7))) == list(
            policy.delays(random.Random(7))
        )

    def test_schedule_length_is_attempts_minus_one(self):
        policy = RetryPolicy(max_attempts=5)
        assert len(list(policy.delays(random.Random(0)))) == 4
        assert list(RetryPolicy(max_attempts=1).delays(random.Random(0))) == []
