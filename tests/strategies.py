"""Hypothesis strategies shared by the property-based tests.

Builds random XML documents, edit sequences, and security policies
within the fragment both engines (procedural and formal) support, so
differential properties can be stated over them.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.xmltree import (
    Fragment,
    NodeKind,
    XMLDocument,
    element,
    text,
)

#: Small label alphabet keeps collisions (same-named siblings, rule
#: paths matching several nodes) frequent, which is where bugs live.
LABELS = ("a", "b", "c", "d", "patients", "diagnosis")
TEXTS = ("x", "y", "zz", "pneumonia")
USERS = ("u1", "u2")
ROLES = ("r1", "r2")


@st.composite
def fragments(draw, max_depth: int = 3, max_children: int = 3) -> Fragment:
    """A random element fragment of bounded depth and fan-out."""
    name = draw(st.sampled_from(LABELS))
    if max_depth <= 0:
        return element(name)
    n_children = draw(st.integers(min_value=0, max_value=max_children))
    children = []
    for _ in range(n_children):
        if draw(st.booleans()):
            children.append(text(draw(st.sampled_from(TEXTS))))
        else:
            children.append(
                draw(fragments(max_depth=max_depth - 1, max_children=max_children))
            )
    return element(name, *children)


@st.composite
def documents(draw, max_depth: int = 3, max_children: int = 3) -> XMLDocument:
    """A random document with a random root-element subtree."""
    doc = XMLDocument()
    fragment = draw(fragments(max_depth=max_depth, max_children=max_children))
    fragment.attach(doc, doc.document_node.nid)
    return doc


#: Rule paths inside the PathCompiler fragment (and thus comparable
#: between the procedural and formal engines).
RULE_PATHS = (
    "/*",
    "//*",
    "//a",
    "//b",
    "//a/*",
    "//b/*",
    "//diagnosis",
    "//diagnosis/*",
    "/patients",
    "/patients/*",
    "//a/descendant-or-self::*",
    "//text()",
    "//c/text()",
    "//*[name()='d']",
)

PRIVILEGES = ("read", "position", "insert", "update", "delete")


@st.composite
def policy_rules(draw, max_rules: int = 8):
    """A random list of (effect, privilege, path, subject) tuples."""
    n = draw(st.integers(min_value=0, max_value=max_rules))
    rules = []
    for _ in range(n):
        effect = draw(st.sampled_from(("accept", "deny")))
        privilege = draw(st.sampled_from(PRIVILEGES))
        path = draw(st.sampled_from(RULE_PATHS))
        subject = draw(st.sampled_from(USERS + ROLES))
        rules.append((effect, privilege, path, subject))
    return rules


def build_subjects():
    """The fixed little hierarchy the random policies reference."""
    from repro.security import SubjectHierarchy

    subjects = SubjectHierarchy()
    subjects.add_role("r1")
    subjects.add_role("r2", member_of="r1")
    subjects.add_user("u1", member_of="r1")
    subjects.add_user("u2", member_of="r2")
    return subjects


def build_policy(subjects, rules):
    """Install random rule tuples into a Policy with auto priorities."""
    from repro.security import Policy

    policy = Policy(subjects)
    for effect, privilege, path, subject in rules:
        if effect == "accept":
            policy.grant(privilege, path, subject)
        else:
            policy.deny(privilege, path, subject)
    return policy


def storable(doc) -> bool:
    """True when the document survives an XML text round-trip.

    Adjacent text siblings merge when re-parsed, so documents containing
    them are not faithfully storable; persistence properties skip them.
    """
    for nid in doc.all_nodes():
        kids = doc.children(nid)
        if any(
            doc.kind(a) is NodeKind.TEXT and doc.kind(b) is NodeKind.TEXT
            for a, b in zip(kids, kids[1:])
        ):
            return False
    return True


@st.composite
def secure_databases(draw, max_depth: int = 3, max_children: int = 3):
    """A random storable database: document + fixed subjects + policy."""
    from repro.security import SecureXMLDatabase

    doc = draw(
        documents(max_depth=max_depth, max_children=max_children).filter(storable)
    )
    subjects = build_subjects()
    policy = build_policy(subjects, draw(policy_rules()))
    return SecureXMLDatabase(doc, subjects, policy)
