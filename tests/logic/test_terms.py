"""Terms, rules, and the safety checker."""

import pytest

from repro.logic import Atom, Comparison, Rule, Var, atom, cmp, neg, pos


X, Y, Z = Var("X"), Var("Y"), Var("Z")


class TestAtoms:
    def test_ground_detection(self):
        assert atom("p", 1, "a").is_ground()
        assert not atom("p", X).is_ground()

    def test_variables(self):
        assert atom("p", X, 1, Y).variables() == {"X", "Y"}

    def test_substitute(self):
        ground = atom("p", X, Y).substitute({"X": 1, "Y": 2})
        assert ground == atom("p", 1, 2)

    def test_partial_substitute_keeps_variables(self):
        partial = atom("p", X, Y).substitute({"X": 1})
        assert partial == atom("p", 1, Y)

    def test_atoms_hashable(self):
        assert len({atom("p", 1), atom("p", 1)}) == 1


class TestComparisons:
    def test_all_operators(self):
        binding = {"X": 3, "Y": 5}
        assert cmp("<", X, Y).holds(binding)
        assert cmp("<=", X, X).holds(binding)
        assert cmp(">", Y, X).holds(binding)
        assert cmp(">=", Y, Y).holds(binding)
        assert cmp("==", X, 3).holds(binding)
        assert cmp("!=", X, Y).holds(binding)

    def test_constants_on_both_sides(self):
        assert cmp("<", 1, 2).holds({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            cmp("~~", X, Y)

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            cmp("<", X, 1).holds({})


class TestRuleSafety:
    def test_safe_rule_passes(self):
        Rule(atom("q", X), (pos("p", X),)).check_safety()

    def test_head_variable_must_be_bound(self):
        with pytest.raises(ValueError):
            Rule(atom("q", X, Y), (pos("p", X),)).check_safety()

    def test_comparison_variables_must_be_bound(self):
        with pytest.raises(ValueError):
            Rule(atom("q", X), (pos("p", X), cmp("<", Y, 1))).check_safety()

    def test_negation_with_bound_variables_is_safe(self):
        Rule(atom("q", X), (pos("p", X), neg("r", X))).check_safety()

    def test_negation_with_local_existential_is_safe(self):
        # Y occurs only inside the negated literal: not exists Y. r(X, Y).
        Rule(atom("q", X), (pos("p", X), neg("r", X, Y))).check_safety()

    def test_negation_variable_shared_but_unbound_is_unsafe(self):
        # Y appears in the head but is only "bound" by a negation.
        with pytest.raises(ValueError):
            Rule(atom("q", X, Y), (pos("p", X), neg("r", X, Y))).check_safety()

    def test_fact_rule_with_variables_is_unsafe(self):
        with pytest.raises(ValueError):
            Rule(atom("q", X), ()).check_safety()
