"""XPath 1.0 engine: the paper's query language (section 3.4).

A from-scratch lexer, parser and evaluator for the XPath 1.0 subset the
model needs (all axes, predicates, the core function library,
variables).  The facade is :class:`XPathEngine`.
"""

from .ast import (
    AXES,
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    UnionExpr,
    VariableRef,
)
from .compiler import (
    CompiledXPath,
    XPathDifferentialError,
    compile_expr,
    differential_enabled,
    set_differential,
)
from .engine import XPathEngine
from .evaluator import Context, XPathEvaluationError, evaluate
from .functions import CORE_FUNCTIONS, XPathFunction, XPathFunctionError
from .lexer import Token, XPathSyntaxError, tokenize
from .parser import parse_xpath
from .values import (
    NodeSet,
    XPathValue,
    is_node_set,
    number_to_string,
    sort_document_order,
    to_boolean,
    to_number,
    to_string,
)

__all__ = [
    "AXES",
    "BinaryOp",
    "CORE_FUNCTIONS",
    "CompiledXPath",
    "Context",
    "Expr",
    "FilterExpr",
    "FunctionCall",
    "KindTest",
    "Literal",
    "LocationPath",
    "NameTest",
    "Negate",
    "NodeSet",
    "NumberLiteral",
    "PathExpr",
    "Step",
    "Token",
    "UnionExpr",
    "VariableRef",
    "XPathEngine",
    "XPathEvaluationError",
    "XPathFunction",
    "XPathFunctionError",
    "XPathSyntaxError",
    "XPathValue",
    "evaluate",
    "is_node_set",
    "number_to_string",
    "parse_xpath",
    "sort_document_order",
    "to_boolean",
    "to_number",
    "to_string",
    "tokenize",
]
