"""Persistent node-numbering schemes for XML trees.

The paper (section 3.1) requires a numbering scheme with two properties:

1. *Geometry derivability*: every tree-geometry relation (parent, child,
   ancestor, descendant, sibling order, document order) can be derived by
   looking only at the node numbers.
2. *Persistence*: numbers assigned to existing nodes never change, even
   after updates that restructure the tree (no renumbering).

The paper cites several schemes ([21][6][24][8]) and uses its own
persistent scheme [12] in the Prolog prototype.  That scheme was never
published in full, so this module provides:

- :class:`PersistentDeweyScheme` -- the default.  A Dewey-style label
  whose components are exact rationals (``fractions.Fraction``), so a new
  sibling can always be inserted *between* two existing siblings without
  touching their labels.  Functionally equivalent to the paper's [12] and
  to ORDPATH-style careting, but simpler to reason about and easy to
  property-test.
- :class:`LSDXScheme` -- a string-based scheme in the spirit of LSDX [8]
  (Duong & Zhang 2005): labels are ``level`` + an alphabetic ordering key
  per ancestor step; insert-between generates a key lexicographically
  between its neighbours.
- :class:`RenumberingScheme` -- a *naive* integer Dewey scheme that must
  renumber following siblings (and their subtrees) on insert-between.  It
  intentionally violates persistence and exists as the ablation baseline
  for benchmark E13.

All schemes share the :class:`NumberingScheme` interface and produce
:class:`NodeId` values that are hashable, totally ordered in document
order, and self-describing (parent/level derivable from the id alone).
"""

from __future__ import annotations

import itertools
import string
from abc import ABC, abstractmethod
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Optional, Sequence, Tuple

__all__ = [
    "NodeId",
    "DOCUMENT_ID",
    "NumberingScheme",
    "PersistentDeweyScheme",
    "LSDXScheme",
    "RenumberingScheme",
    "document_order_key",
]


@dataclass(frozen=True, order=False)
class NodeId:
    """A node identifier: an immutable path of ordering components.

    ``components`` is a tuple of per-level ordering keys.  The empty tuple
    is the *document node* (the paper writes its identifier as ``/``).
    Components must be mutually comparable within one document; the
    default scheme uses :class:`fractions.Fraction`, the LSDX scheme uses
    strings.  Document order is depth-first pre-order, which for path
    labels is exactly the lexicographic order of the component tuples.
    """

    components: Tuple[object, ...]

    # -- structure ---------------------------------------------------------
    @property
    def level(self) -> int:
        """Depth of the node; the document node is at level 0."""
        return len(self.components)

    @property
    def is_document(self) -> bool:
        """True for the document node (identifier ``/``)."""
        return not self.components

    def parent(self) -> "NodeId":
        """The identifier of this node's parent.

        Raises:
            ValueError: if called on the document node, which has no parent.
        """
        if self.is_document:
            raise ValueError("the document node has no parent")
        return NodeId(self.components[:-1])

    def child(self, component: object) -> "NodeId":
        """Return the id for a child of this node with the given component."""
        return NodeId(self.components + (component,))

    def ancestors(self) -> Iterator["NodeId"]:
        """Yield proper ancestors from parent up to the document node."""
        nid = self
        while not nid.is_document:
            nid = nid.parent()
            yield nid

    def is_ancestor_of(self, other: "NodeId") -> bool:
        """True if this node is a *proper* ancestor of ``other``."""
        n = len(self.components)
        return n < len(other.components) and other.components[:n] == self.components

    def is_descendant_of(self, other: "NodeId") -> bool:
        """True if this node is a *proper* descendant of ``other``."""
        return other.is_ancestor_of(self)

    # -- ordering ----------------------------------------------------------
    def _order_key(self) -> Tuple[Tuple[int, object], ...]:
        # Components of mixed types never occur within one document, but a
        # defensive type tag keeps comparisons total anyway.
        return tuple((0, c) if isinstance(c, Fraction) else (1, c) for c in self.components)

    def __lt__(self, other: "NodeId") -> bool:
        return self._order_key() < other._order_key()

    def __le__(self, other: "NodeId") -> bool:
        return self == other or self < other

    def __gt__(self, other: "NodeId") -> bool:
        return other < self

    def __ge__(self, other: "NodeId") -> bool:
        return other <= self

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if self.is_document:
            return "NodeId(/)"
        return "NodeId(%s)" % ".".join(str(c) for c in self.components)


#: The identifier of the document node, written ``/`` in the paper.
DOCUMENT_ID = NodeId(())


def document_order_key(nid: NodeId) -> Tuple[Tuple[int, object], ...]:
    """Sort key producing document (pre-)order for any iterable of ids."""
    return nid._order_key()


class NumberingScheme(ABC):
    """Strategy interface for assigning ordering components to new nodes.

    A scheme only decides the *ordering component* of a newly inserted
    node relative to its siblings; the tree-path structure of
    :class:`NodeId` is shared by all schemes, which is what makes parent /
    ancestor / document-order derivable from the identifier alone.
    """

    #: Whether existing labels survive arbitrary insertions unchanged.
    persistent: bool = True

    #: Short name used in benchmark output.
    name: str = "abstract"

    @abstractmethod
    def initial_component(self) -> object:
        """Component for the first child of a node that has no children."""

    @abstractmethod
    def component_between(
        self, before: Optional[object], after: Optional[object]
    ) -> object:
        """A fresh component strictly between ``before`` and ``after``.

        ``before is None`` means "insert in first position";
        ``after is None`` means "insert in last position".  At least one
        bound is always given by callers inserting into a non-empty
        sibling list.
        """

    # -- convenience helpers used by the document layer ---------------------
    def first_child_id(self, parent: NodeId) -> NodeId:
        """Id for the first child inserted under a childless ``parent``."""
        return parent.child(self.initial_component())

    def child_id_between(
        self,
        parent: NodeId,
        before: Optional[NodeId],
        after: Optional[NodeId],
    ) -> NodeId:
        """Id for a child of ``parent`` between siblings ``before``/``after``.

        Raises:
            ValueError: if a supplied sibling is not actually a child of
                ``parent``.
        """
        for sib in (before, after):
            if sib is not None and sib.parent() != parent:
                raise ValueError(f"{sib!r} is not a child of {parent!r}")
        lo = before.components[-1] if before is not None else None
        hi = after.components[-1] if after is not None else None
        return parent.child(self.component_between(lo, hi))


class PersistentDeweyScheme(NumberingScheme):
    """Dewey labels with exact-rational components (the default scheme).

    Insertion between siblings with components ``a < b`` assigns the
    midpoint ``(a + b) / 2``; insertion at either end steps by 1.  Because
    rationals are dense, no insertion ever requires renumbering -- the
    property the paper demands of its own scheme [12].
    """

    persistent = True
    name = "persistent-dewey"

    def initial_component(self) -> Fraction:
        return Fraction(1)

    def component_between(
        self, before: Optional[Fraction], after: Optional[Fraction]
    ) -> Fraction:
        if before is None and after is None:
            return self.initial_component()
        if before is None:
            assert after is not None
            return after - 1
        if after is None:
            return before + 1
        if not before < after:
            raise ValueError(f"cannot insert between {before} and {after}")
        return (before + after) / 2


# LSDX uses letters for ordering; we use the full lowercase+uppercase
# alphabet as base-52 "digits" with 'a' < ... < 'z' < 'A'?  No: Python
# string comparison orders uppercase before lowercase, so stick to a
# single case to keep lexicographic order intuitive.
_LSDX_ALPHABET = string.ascii_lowercase
_LSDX_MIN = _LSDX_ALPHABET[0]
_LSDX_MAX = _LSDX_ALPHABET[-1]


class LSDXScheme(NumberingScheme):
    """String-key scheme in the spirit of LSDX [8].

    Each component is a non-empty lowercase string that never ends in the
    minimal letter ``'a'`` (so every key has lexicographic room below it).
    ``component_between`` produces a key strictly between its neighbours
    without modifying them, mirroring LSDX's "add letters" rule.
    """

    persistent = True
    name = "lsdx"

    def initial_component(self) -> str:
        return "b"

    def component_between(
        self, before: Optional[str], after: Optional[str]
    ) -> str:
        if before is None and after is None:
            return self.initial_component()
        if before is None:
            assert after is not None
            return self._key_below(after)
        if after is None:
            return self._key_above(before)
        if not before < after:
            raise ValueError(f"cannot insert between {before!r} and {after!r}")
        return self._key_between(before, after)

    @staticmethod
    def _key_above(key: str) -> str:
        """A key > ``key``: bump the first non-maximal letter."""
        for i, ch in enumerate(key):
            if ch != _LSDX_MAX:
                nxt = _LSDX_ALPHABET[_LSDX_ALPHABET.index(ch) + 1]
                return key[:i] + nxt
        return key + "b"

    @staticmethod
    def _key_below(key: str) -> str:
        """A key < ``key`` but > all-'a' prefixes (keys never end in 'a')."""
        for i, ch in enumerate(key):
            if ch != _LSDX_MIN:
                idx = _LSDX_ALPHABET.index(ch)
                if idx > 1:
                    return key[:i] + _LSDX_ALPHABET[idx - 1]
                # ch == 'b': demoting to 'a' would end in the minimal
                # letter, so descend one level instead.
                return key[:i] + _LSDX_MIN + "m"
        raise ValueError(f"malformed LSDX key {key!r}")  # pragma: no cover

    @staticmethod
    def _key_between(lo: str, hi: str) -> str:
        """A key strictly between ``lo`` and ``hi`` (``lo < hi``)."""
        # Scan positions; pad lo with the minimal letter.
        prefix = []
        for i in itertools.count():
            lo_ch = lo[i] if i < len(lo) else _LSDX_MIN
            hi_ch = hi[i] if i < len(hi) else None
            if hi_ch is not None and lo_ch == hi_ch:
                prefix.append(lo_ch)
                continue
            lo_idx = _LSDX_ALPHABET.index(lo_ch)
            hi_idx = _LSDX_ALPHABET.index(hi_ch) if hi_ch is not None else len(_LSDX_ALPHABET)
            if hi_idx - lo_idx >= 2:
                mid = _LSDX_ALPHABET[(lo_idx + hi_idx) // 2]
                return "".join(prefix) + mid
            # Adjacent letters: keep lo's letter and extend to the right
            # with something above the rest of lo.
            prefix.append(lo_ch)
            rest = lo[i + 1 :]
            return "".join(prefix) + LSDXScheme._key_above(rest or _LSDX_MIN)
        raise AssertionError("unreachable")  # pragma: no cover


class RenumberingScheme(NumberingScheme):
    """Naive integer Dewey labels (ablation baseline, benchmark E13).

    Components are plain integers spaced by 1.  ``component_between``
    raises :class:`RenumberingRequired` whenever there is no integer gap,
    and the document layer responds by renumbering the following siblings
    -- exactly the cost the paper's persistence requirement avoids.
    """

    persistent = False
    name = "renumbering"

    def initial_component(self) -> Fraction:
        # Integral Fractions keep NodeId ordering keys homogeneous with
        # the default scheme, while the scheme itself only ever produces
        # whole numbers.
        return Fraction(1)

    def component_between(
        self, before: Optional[Fraction], after: Optional[Fraction]
    ) -> Fraction:
        if before is None and after is None:
            return self.initial_component()
        if before is None:
            assert after is not None
            if after - 1 >= 1:
                return after - 1
            raise RenumberingRequired()
        if after is None:
            return before + 1
        if after - before > 1:
            return before + (after - before) // 2
        raise RenumberingRequired()


class RenumberingRequired(Exception):
    """Raised by :class:`RenumberingScheme` when no integer gap exists.

    The document layer catches this and renumbers the sibling run; the
    renumbering cost is what benchmark E13 measures.
    """


def default_scheme() -> NumberingScheme:
    """The numbering scheme used unless a caller picks another one."""
    return PersistentDeweyScheme()
