"""The write-ahead log: durable, replayable commit records.

The paper's update semantics makes ``dbnew`` a deterministic function
of ``db`` and the committed XUpdate script (formulae (2)-(9)), so a
commit is durable as soon as a *description* of it is -- there is no
need to write page images.  One :class:`WriteAheadLog` owns a directory
of segment files; the database's commit point appends one record per
commit **before** installing the new document, and crash recovery
(:mod:`repro.wal.recover`) replays the committed prefix through the
real secure executor path.

On-disk format
--------------

Each segment starts with the magic line ``REPROWAL1\\n`` and holds a
sequence of length-prefixed, checksummed records::

    [4 bytes big-endian payload length]
    [4 bytes big-endian CRC-32 of the payload]
    [payload: UTF-8 JSON object]

Every payload carries a global, strictly increasing ``lsn`` and a
``kind``:

=================  ====================================================
``update``         a session commit: post-commit ``version``, ``user``,
                   the committed ``script`` (XUpdate XML), ``strict``
``admin``          an unsecured administrative commit: ``version``,
                   ``script``
``state``          fallback for commits with no XUpdate spelling: the
                   full post-commit snapshot (``data``)
``subjects``       a subject-hierarchy mutation: ``op`` + ``args``
``policy``         a policy mutation: ``op`` + ``args``
``checkpoint``     a snapshot boundary: ``version`` + snapshot filename
=================  ====================================================

Torn-tail rule: a record whose length prefix overruns the file, whose
CRC does not match, or whose ``lsn`` breaks the sequence marks the end
of the usable log; everything from its first byte on is an artifact of
the crash and is truncated (never replayed).

Fencing epochs: a log opened with ``epoch=N > 0`` stamps ``"epoch": N``
into every record it appends, and its checkpoint snapshots carry the
epoch in their filename (``checkpoint-<lsn>-<version>-e<epoch>.xml``).
Records and checkpoints written before this field existed -- or by the
implicit pre-failover epoch 0 -- simply omit it and load as epoch 0
everywhere (``payload.get("epoch", 0)``), so old logs replay
unchanged.  The epoch is monotone per directory: opening with an epoch
below what the directory already holds is refused.  See
:mod:`repro.replication.supervisor` for who bumps it and why.

Fsync policy: ``"always"`` fsyncs every append (a commit acknowledged
is a commit recovered); ``"batch(N,ms)"`` fsyncs after N pending
appends or ms milliseconds, whichever comes first (bounded loss window,
much cheaper); ``"os"`` never fsyncs (the OS page cache decides --
segment rotations and checkpoints still fsync).

Kill-points consulted (:mod:`repro.testing.faults`):
``wal-before-append`` before any byte of a record is written,
``wal-mid-record`` after roughly half the payload (a torn record),
``wal-before-fsync`` once the record is fully written but not yet
durable, and ``checkpoint-mid-snapshot`` halfway through a checkpoint
snapshot write.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import struct
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import (
    WalCorruptionError,
    WalStreamGap,
    WalWriteError,
    classify_disk_error,
)
from ..testing.diskfaults import disk
from ..testing.faults import kill_point
from ..xupdate.serializer import XUpdateSerializeError, dump_xupdate

__all__ = [
    "Checkpoint",
    "DamageClass",
    "FsyncPolicy",
    "QUARANTINE_SUFFIX",
    "ScanResult",
    "TornTail",
    "WalRecord",
    "WalStream",
    "WriteAheadLog",
    "classify_damage",
    "list_checkpoints",
    "quarantine_reason",
    "quarantine_segment",
    "quarantined_segments",
    "scan_directory",
    "scan_segment",
]

MAGIC = b"REPROWAL1\n"
_HEADER = struct.Struct(">II")
_MAX_RECORD = 1 << 28  # 256 MiB: anything larger is a corrupt length
_SEGMENT_RE = re.compile(r"^segment-(\d{10})\.wal$")
_CHECKPOINT_RE = re.compile(
    r"^checkpoint-(\d{10})-(\d{10})(?:-e(\d+))?\.xml$"
)
_BATCH_RE = re.compile(r"^batch\((\d+),(\d+(?:\.\d+)?)\)$")

#: Sidecar marker a quarantined segment carries: ``<segment>.quarantined``
#: holding the diagnosis.  A quarantined segment is never replayed, never
#: streamed past, and blocks re-opening the log for writing until
#: anti-entropy repair (or an operator) clears it.
QUARANTINE_SUFFIX = ".quarantined"


@dataclass(frozen=True)
class FsyncPolicy:
    """When appended records are forced to stable storage.

    Attributes:
        kind: ``"always"``, ``"batch"`` or ``"os"``.
        batch_records: (batch) fsync after this many pending appends.
        batch_ms: (batch) ...or this many milliseconds, whichever first.
    """

    kind: str
    batch_records: int = 1
    batch_ms: float = 0.0

    @classmethod
    def parse(cls, spec: "str | FsyncPolicy") -> "FsyncPolicy":
        """Parse ``"always"`` / ``"os"`` / ``"batch(N,ms)"``."""
        if isinstance(spec, FsyncPolicy):
            return spec
        if spec in ("always", "os"):
            return cls(spec)
        match = _BATCH_RE.match(spec.replace(" ", ""))
        if match:
            records, ms = int(match.group(1)), float(match.group(2))
            if records < 1:
                raise ValueError("batch record count must be >= 1")
            return cls("batch", records, ms)
        raise ValueError(
            f"unknown fsync policy {spec!r} "
            f"(expected 'always', 'os' or 'batch(N,ms)')"
        )

    def __str__(self) -> str:
        if self.kind == "batch":
            return f"batch({self.batch_records},{self.batch_ms:g})"
        return self.kind


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record.

    Attributes:
        lsn: the record's log sequence number.
        kind: record kind (see module docstring).
        payload: the full decoded JSON object (``lsn``/``kind``
            included).
        segment: path of the segment file holding the record.
        offset: byte offset of the record's header in the segment.
        length: total on-disk size (header + payload).
    """

    lsn: int
    kind: str
    payload: Dict[str, Any]
    segment: str
    offset: int
    length: int

    @property
    def epoch(self) -> int:
        """The fencing epoch the record was written under (0 for
        records that predate epochs -- the compat default)."""
        return int(self.payload.get("epoch", 0))


@dataclass(frozen=True)
class TornTail:
    """Where -- and why -- the usable log ends early.

    Attributes:
        segment: segment file holding the damage.
        offset: byte offset of the first unusable byte.
        reason: human-readable diagnosis (short read, CRC mismatch,
            lsn discontinuity, ...).
        dropped_bytes: bytes from ``offset`` to the end of that
            segment.
        dropped_segments: later segment files (unreachable once the
            log is cut here).
    """

    segment: str
    offset: int
    reason: str
    dropped_bytes: int
    dropped_segments: Tuple[str, ...] = ()

    def __str__(self) -> str:
        extra = (
            f" (+{len(self.dropped_segments)} later segment(s))"
            if self.dropped_segments
            else ""
        )
        return (
            f"torn tail at {os.path.basename(self.segment)}:{self.offset}: "
            f"{self.reason}; {self.dropped_bytes} byte(s) dropped{extra}"
        )


@dataclass(frozen=True)
class Checkpoint:
    """One checkpoint snapshot on disk.

    Attributes:
        lsn: every record with a larger lsn post-dates the snapshot.
        version: the database version the snapshot captures.
        path: the snapshot file (a ``<securedb>`` dump with integrity
            header).
        epoch: the fencing epoch the snapshot was cut under (0 for
            old-format filenames without the ``-e<epoch>`` suffix).
    """

    lsn: int
    version: int
    path: str
    epoch: int = 0


@dataclass
class ScanResult:
    """Everything a read-only pass over a log directory found.

    Attributes:
        records: the usable records, in lsn order.
        torn: where the usable log ends early, or None when every
            segment read cleanly to its end.
        segments: segment file paths, in lsn order.
    """

    records: List[WalRecord] = field(default_factory=list)
    torn: Optional[TornTail] = None
    segments: List[str] = field(default_factory=list)

    @property
    def last_lsn(self) -> int:
        """The last usable record's lsn (0 for an empty log)."""
        return self.records[-1].lsn if self.records else 0


# ---------------------------------------------------------------------------
# read side
# ---------------------------------------------------------------------------
def scan_segment(
    path: str, expect_lsn: Optional[int] = None
) -> Tuple[List[WalRecord], Optional[TornTail]]:
    """Decode one segment file; never raises on damage.

    Args:
        path: the segment file.
        expect_lsn: lsn the first record must carry (None skips the
            continuity check for the first record).

    Returns:
        ``(records, torn)``: the records readable in order, and the
        torn-tail description if the segment did not end cleanly
        (damage is *reported*, not raised -- strictness is the
        caller's policy decision).
    """
    records: List[WalRecord] = []
    try:
        with disk.open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        # EIO on a scan degrades like damage at offset 0: the caller's
        # strictness policy decides whether that raises or truncates.
        return records, TornTail(path, 0, f"segment unreadable ({exc})", 0)
    size = len(data)

    def torn_at(offset: int, reason: str) -> TornTail:
        return TornTail(path, offset, reason, size - offset)

    if not data.startswith(MAGIC):
        return records, torn_at(0, "bad segment magic")
    offset = len(MAGIC)
    next_lsn = expect_lsn
    while offset < size:
        if size - offset < _HEADER.size:
            return records, torn_at(
                offset, f"short record header ({size - offset} byte(s))"
            )
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD:
            return records, torn_at(
                offset, f"implausible record length {length}"
            )
        start = offset + _HEADER.size
        if size - start < length:
            return records, torn_at(
                offset,
                f"record payload truncated ({size - start} of {length} "
                f"byte(s))",
            )
        payload_bytes = data[start:start + length]
        if zlib.crc32(payload_bytes) & 0xFFFFFFFF != crc:
            return records, torn_at(offset, "CRC mismatch")
        try:
            payload = json.loads(payload_bytes.decode("utf-8"))
            lsn = int(payload["lsn"])
            kind = str(payload["kind"])
        except Exception as exc:
            return records, torn_at(offset, f"undecodable payload ({exc})")
        if next_lsn is not None and lsn != next_lsn:
            return records, torn_at(
                offset, f"lsn discontinuity (found {lsn}, expected {next_lsn})"
            )
        records.append(
            WalRecord(lsn, kind, payload, path, offset, _HEADER.size + length)
        )
        next_lsn = lsn + 1
        offset = start + length
    return records, None


@dataclass(frozen=True)
class DamageClass:
    """What kind of damage a :class:`TornTail` describes (ISSUE 10).

    The torn-tail rule is only safe for damage a *crash* can produce:
    an interrupted append leaves garbage at the very end of the log
    with nothing decodable after it.  Damage with an intact record
    *behind* it -- bit rot at rest, a flipped length field, a hole
    punched mid-segment -- is not a crash artifact, and truncating
    there would silently drop acknowledged commits that are still
    perfectly readable.

    Attributes:
        tail: True when the damage is consistent with a crash
            mid-append (nothing decodable follows) -- safe to
            truncate.  False means non-tail corruption: quarantine and
            repair, never truncate.
        resync_offset: (non-tail only) byte offset of the first intact
            record found past the damage, 0 when none was located
            (e.g. the damage spans later whole segments).
        resync_lsn: (non-tail only) that record's lsn, 0 when none.
    """

    tail: bool
    resync_offset: int = 0
    resync_lsn: int = 0


def classify_damage(torn: TornTail) -> DamageClass:
    """Distinguish a crash's torn tail from non-tail corruption.

    Scans the damaged segment forward from the reported offset for any
    intact record -- plausible length prefix, matching CRC, decodable
    JSON payload with an lsn.  Finding one proves the damage is *not*
    the end of what was ever written (a crash cannot write valid
    records after the point where it died), so the torn-tail rule must
    not truncate there.  Damage that drops whole later segments is
    non-tail by definition.

    The scan is cheap for genuine torn tails (only the short in-flight
    remainder is examined) and bounded by the segment size for rot.
    """
    if torn.dropped_segments:
        return DamageClass(tail=False)
    try:
        with disk.open(torn.segment, "rb") as handle:
            data = handle.read()
    except OSError:
        # Unreadable now: nothing provable either way; treat as
        # non-tail so nobody truncates based on damage they cannot see.
        return DamageClass(tail=False)
    size = len(data)
    offset = max(torn.offset + 1, len(MAGIC))
    while offset <= size - _HEADER.size:
        # Candidate payloads open with '{' (every record is a JSON
        # object); checking one byte first keeps the scan linear-ish.
        begin = offset + _HEADER.size
        if begin < size and data[begin] != 0x7B:
            offset += 1
            continue
        length, crc = _HEADER.unpack_from(data, offset)
        if 0 < length <= _MAX_RECORD and begin + length <= size:
            payload_bytes = data[begin:begin + length]
            if zlib.crc32(payload_bytes) & 0xFFFFFFFF == crc:
                try:
                    payload = json.loads(payload_bytes.decode("utf-8"))
                    lsn = int(payload["lsn"])
                    str(payload["kind"])
                except Exception:
                    lsn = 0
                if lsn > 0:
                    return DamageClass(
                        tail=False, resync_offset=offset, resync_lsn=lsn
                    )
        offset += 1
    return DamageClass(tail=True)


def quarantine_segment(path: str, reason: str) -> str:
    """Mark a segment as corrupt with a sidecar file; returns its path.

    The marker (``<segment>.quarantined``) holds the human-readable
    diagnosis.  Quarantining is idempotent -- re-quarantining appends
    nothing and keeps the first diagnosis.
    """
    marker = path + QUARANTINE_SUFFIX
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(reason.rstrip("\n") + "\n")
            handle.flush()
            with contextlib.suppress(OSError):
                os.fsync(handle.fileno())
        _fsync_directory(os.path.dirname(marker) or ".")
    return marker


def quarantine_reason(path: str) -> Optional[str]:
    """The diagnosis a segment was quarantined with, or None."""
    try:
        with open(path + QUARANTINE_SUFFIX, "r", encoding="utf-8") as handle:
            return handle.read().strip()
    except OSError:
        return None


def quarantined_segments(directory: str) -> List[str]:
    """Segment paths in ``directory`` carrying a quarantine marker."""
    out = []
    if not os.path.isdir(directory):
        return out
    for name in sorted(os.listdir(directory)):
        if name.endswith(QUARANTINE_SUFFIX):
            segment = os.path.join(directory, name[: -len(QUARANTINE_SUFFIX)])
            if _SEGMENT_RE.match(os.path.basename(segment)):
                out.append(segment)
    return out


def _segment_files(directory: str) -> List[Tuple[int, str]]:
    """``(first_lsn, path)`` for every segment file, in lsn order."""
    out: List[Tuple[int, str]] = []
    for name in os.listdir(directory):
        match = _SEGMENT_RE.match(name)
        if match:
            out.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(out)


def scan_directory(directory: str) -> ScanResult:
    """Read every record the log directory holds, in lsn order.

    Applies the torn-tail rule across segments: the first unreadable
    record ends the usable log, and any later segment files are
    reported as dropped in the :class:`TornTail` rather than read.
    """
    result = ScanResult()
    files = _segment_files(directory)
    result.segments = [path for _lsn, path in files]
    expect: Optional[int] = None
    for index, (first_lsn, path) in enumerate(files):
        if expect is not None and first_lsn != expect:
            result.torn = TornTail(
                path,
                0,
                f"segment starts at lsn {first_lsn}, expected {expect}",
                os.path.getsize(path),
                tuple(p for _l, p in files[index + 1:]),
            )
            return result
        records, torn = scan_segment(path, expect_lsn=expect)
        result.records.extend(records)
        expect = records[-1].lsn + 1 if records else (expect or first_lsn)
        if torn is not None:
            later = tuple(p for _l, p in files[index + 1:])
            result.torn = TornTail(
                torn.segment,
                torn.offset,
                torn.reason,
                torn.dropped_bytes,
                later,
            )
            return result
    return result


def list_checkpoints(directory: str) -> List[Checkpoint]:
    """Every checkpoint snapshot in the directory, oldest first."""
    out: List[Checkpoint] = []
    if not os.path.isdir(directory):
        return out
    for name in os.listdir(directory):
        match = _CHECKPOINT_RE.match(name)
        if match:
            out.append(
                Checkpoint(
                    int(match.group(1)),
                    int(match.group(2)),
                    os.path.join(directory, name),
                    int(match.group(3) or 0),
                )
            )
    return sorted(out, key=lambda c: c.lsn)


# ---------------------------------------------------------------------------
# following (replication feed)
# ---------------------------------------------------------------------------
class WalStream:
    """A resumable cursor over a live log directory, for followers.

    Where :func:`scan_directory` reads a *dead* log once, a stream
    tails a directory another process (or thread) is still appending
    to: :meth:`poll` returns every record past the cursor that is
    fully durable on disk right now, and the cursor advances so the
    next poll picks up where this one stopped.  The same torn-tail
    rule applies, reinterpreted for a live writer: an undecodable tail
    is *in flight* (a half-flushed append, or one the writer's crash
    will truncate), so the stream stops in front of it and retries on
    the next poll rather than reporting damage.

    Segment rotation is followed transparently.  Checkpoint retention
    is the one thing a follower cannot survive incrementally: when the
    segment holding the cursor's next lsn has been pruned away (the
    follower lagged behind the retention window) or the history behind
    the cursor was rewritten, :meth:`poll` raises
    :class:`~repro.errors.WalStreamGap` and the follower must re-seed
    from the newest checkpoint (:meth:`repro.replication.Replica.catch_up`).

    Kill-point consulted: ``stream-truncated`` at the top of every
    poll -- the chaos lane uses it to simulate the feed being cut out
    from under a replica.

    Args:
        directory: the log directory to follow.
        from_lsn: deliver records *after* this lsn (0 follows from the
            beginning of the retained log).
    """

    def __init__(self, directory: str, from_lsn: int = 0) -> None:
        if from_lsn < 0:
            raise ValueError("from_lsn must be >= 0")
        self._directory = os.path.abspath(directory)
        self._next_lsn = from_lsn + 1
        self._segment: Optional[str] = None
        self._offset = 0
        self._in_flight: Optional[TornTail] = None

    @property
    def directory(self) -> str:
        """The log directory being followed."""
        return self._directory

    @property
    def next_lsn(self) -> int:
        """The lsn the next delivered record will carry."""
        return self._next_lsn

    @property
    def in_flight(self) -> Optional[TornTail]:
        """The undecodable tail the last poll stopped in front of, or
        None when it ended at a clean end-of-log."""
        return self._in_flight

    def poll(self, max_records: Optional[int] = None) -> List[WalRecord]:
        """Every durable record past the cursor, in lsn order.

        Returns an empty list when the follower is caught up (or the
        only bytes past the cursor are an in-flight append).  The
        cursor advances past everything returned.

        Args:
            max_records: stop after this many records (None reads to
                the current end of log); the rest stay for later polls.

        Raises:
            WalStreamGap: the cursor's position is no longer on disk
                (pruned by checkpoint retention, or rewritten); the
                follower must re-seed from a checkpoint.
            InjectedFault: the ``stream-truncated`` kill-point fired.
        """
        kill_point("stream-truncated", next_lsn=self._next_lsn)
        out: List[WalRecord] = []
        self._in_flight = None
        while max_records is None or len(out) < max_records:
            files = _segment_files(self._directory)
            if not files:
                if self._next_lsn > 1:
                    raise WalStreamGap(
                        f"{self._directory}: log vanished under the stream "
                        f"(needed lsn {self._next_lsn})",
                        next_lsn=self._next_lsn,
                    )
                break  # nothing written yet
            candidates = [
                (first, path) for first, path in files
                if first <= self._next_lsn
            ]
            if not candidates:
                raise WalStreamGap(
                    f"{self._directory}: lsn {self._next_lsn} pruned away "
                    f"(oldest retained segment starts at {files[0][0]})",
                    next_lsn=self._next_lsn,
                    oldest_available=files[0][0],
                )
            first_lsn, path = candidates[-1]
            if path != self._segment:
                self._segment, self._offset = path, len(MAGIC)
            progressed = self._drain_segment(first_lsn, out, max_records)
            if self._in_flight is not None:
                break  # stopped in front of an in-flight append
            successor = next(
                (p for f, p in files if f == self._next_lsn and p != path),
                None,
            )
            if successor is None:
                break  # caught up at the live tail
            if not progressed and successor == self._segment:
                break  # defensive: never spin on one segment
            self._segment, self._offset = successor, len(MAGIC)
        return out

    def _oldest_available(self) -> int:
        """The first lsn still listed on disk (0 = directory empty)."""
        try:
            files = _segment_files(self._directory)
        except OSError:
            return 0
        return files[0][0] if files else 0

    def _drain_segment(
        self, first_lsn: int, out: List[WalRecord], max_records: Optional[int]
    ) -> bool:
        """Decode records at the cursor until end-of-segment, damage,
        or ``max_records``; returns True when the cursor moved."""
        path = self._segment
        if os.path.exists(path + QUARANTINE_SUFFIX):
            # Scrub found non-tail corruption here: a follower must
            # never replay past (or out of) a quarantined segment.
            raise WalStreamGap(
                f"{path}: segment quarantined "
                f"({quarantine_reason(path) or 'corruption detected'})",
                next_lsn=self._next_lsn,
                oldest_available=self._oldest_available(),
            )
        try:
            with disk.open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            # Pruned between the listing and the open (or the device
            # refused the read): surface as a gap with the retention
            # horizon re-listed, so the follower knows where to re-seed.
            raise WalStreamGap(
                f"{path}: segment vanished under the stream",
                next_lsn=self._next_lsn,
                oldest_available=self._oldest_available(),
            )
        size = len(data)
        if size < len(MAGIC) or not data.startswith(MAGIC):
            # A just-created segment whose magic is still in flight.
            self._in_flight = TornTail(path, 0, "segment header in flight", size)
            return False
        if size < self._offset:
            # The segment shrank behind the cursor: the writer crashed
            # and truncated history we already consumed.  Incremental
            # progress is impossible; re-seed from a checkpoint.
            raise WalStreamGap(
                f"{path}: segment truncated behind the stream cursor "
                f"(size {size} < cursor offset {self._offset})",
                next_lsn=self._next_lsn,
                oldest_available=self._oldest_available(),
            )
        moved = False
        expect = first_lsn if self._offset == len(MAGIC) else self._next_lsn
        offset = self._offset
        while offset < size:
            if max_records is not None and len(out) >= max_records:
                break
            if size - offset < _HEADER.size:
                self._in_flight = TornTail(
                    path, offset, "record header in flight", size - offset
                )
                break
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            if length > _MAX_RECORD or size - start < length:
                self._in_flight = TornTail(
                    path, offset, "record payload in flight", size - offset
                )
                break
            payload_bytes = data[start:start + length]
            if zlib.crc32(payload_bytes) & 0xFFFFFFFF != crc:
                self._in_flight = TornTail(
                    path, offset, "record checksum in flight", size - offset
                )
                break
            try:
                payload = json.loads(payload_bytes.decode("utf-8"))
                lsn = int(payload["lsn"])
                kind = str(payload["kind"])
            except Exception:
                self._in_flight = TornTail(
                    path, offset, "record payload undecodable", size - offset
                )
                break
            if lsn != expect:
                raise WalStreamGap(
                    f"{path}: lsn discontinuity under the stream (found "
                    f"{lsn} at offset {offset}, expected {expect})",
                    next_lsn=self._next_lsn,
                )
            record_length = _HEADER.size + length
            if lsn >= self._next_lsn:
                out.append(
                    WalRecord(lsn, kind, payload, path, offset, record_length)
                )
                self._next_lsn = lsn + 1
            offset = start + length
            self._offset = offset
            expect = lsn + 1
            moved = True
        return moved


# ---------------------------------------------------------------------------
# write side
# ---------------------------------------------------------------------------
class WriteAheadLog:
    """An append-only, checksummed log of committed database changes.

    Args:
        directory: the log directory (created if missing).  Opening an
            existing directory resumes after its last usable record; a
            torn tail left by a crash is truncated first (and counted
            in :attr:`stats` as ``torn_tail_repaired``).
        fsync: durability policy -- ``"always"`` (default),
            ``"batch(N,ms)"`` or ``"os"``; see :class:`FsyncPolicy`.
        segment_bytes: rotate to a fresh segment file once the current
            one grows past this size.
        retain_checkpoints: how many checkpoint generations
            :meth:`checkpoint` keeps; older snapshots and the segments
            only they need are deleted.
        clock: monotonic time source for the batch policy (injectable
            for tests).
        epoch: the fencing epoch to write under.  None (default)
            adopts whatever the directory already holds (0 for a fresh
            or pre-epoch log); an explicit epoch must be >= the
            directory's, and every appended record and checkpoint is
            stamped with it.  Promotion opens the new primary's log
            with the bumped epoch; see
            :class:`repro.replication.FailoverSupervisor`.

    A log is bound to a database with
    :meth:`SecureXMLDatabase.attach_wal`, after which every commit
    appends its record *before* the new document is installed, and
    subject/policy mutations are captured through the hierarchies'
    mutation listeners.  All methods are thread-safe.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: "str | FsyncPolicy" = "always",
        segment_bytes: int = 4 << 20,
        retain_checkpoints: int = 2,
        clock: Callable[[], float] = time.monotonic,
        epoch: Optional[int] = None,
    ) -> None:
        if retain_checkpoints < 1:
            raise ValueError("retain_checkpoints must be >= 1")
        if epoch is not None and epoch < 0:
            raise ValueError("epoch must be >= 0")
        self._requested_epoch = epoch
        self._directory = os.path.abspath(directory)
        self._policy = FsyncPolicy.parse(fsync)
        self._segment_bytes = segment_bytes
        self._retain = retain_checkpoints
        self._clock = clock
        self._lock = threading.RLock()
        self._handle = None
        self._failed: Optional[str] = None
        self._failed_disk = None  # the DiskError that poisoned the log
        self._fenced = False
        self._pending = 0
        self._last_sync = clock()
        self._bound_db = None
        self._group_threads: set = set()
        self._annotations: Dict[int, Dict[str, Any]] = {}
        self._stats: Dict[str, int] = {
            "appends": 0,
            "fsyncs": 0,
            "deferred_fsyncs": 0,
            "grouped_appends": 0,
            "group_syncs": 0,
            "rotations": 0,
            "checkpoints": 0,
            "state_fallbacks": 0,
            "torn_tail_repaired": 0,
        }
        os.makedirs(self._directory, exist_ok=True)
        self._open_tail()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _open_tail(self) -> None:
        """Find the end of the usable log and position for appending."""
        quarantined = quarantined_segments(self._directory)
        if quarantined:
            names = ", ".join(os.path.basename(p) for p in quarantined)
            raise WalCorruptionError(
                f"{self._directory}: quarantined segment(s) present "
                f"({names}); repair from a healthy peer "
                f"(repro.replication.repair_from_peer) before reopening "
                f"the log for writing"
            )
        scan = scan_directory(self._directory)
        self._lsn = scan.last_lsn
        disk_epoch = max(
            [0]
            + [record.epoch for record in scan.records]
            + [c.epoch for c in list_checkpoints(self._directory)]
        )
        if self._requested_epoch is None:
            self._epoch = disk_epoch
        elif self._requested_epoch < disk_epoch:
            raise ValueError(
                f"{self._directory}: requested epoch "
                f"{self._requested_epoch} is below epoch {disk_epoch} "
                f"already on disk (epochs only move forward)"
            )
        else:
            self._epoch = self._requested_epoch
        if scan.torn is not None:
            if scan.torn.dropped_segments or scan.torn.offset == 0:
                raise WalCorruptionError(
                    f"{self._directory}: {scan.torn}; this is mid-log damage "
                    f"-- run repro.wal.recover(..., repair=True) before "
                    f"reopening the log for writing"
                )
            damage = classify_damage(scan.torn)
            if not damage.tail:
                # Intact records exist past the damage: this is bit rot
                # (or a hole), not a crash's torn tail.  Truncating
                # would silently drop the readable commits behind it --
                # quarantine and demand repair instead.
                quarantine_segment(
                    scan.torn.segment,
                    f"{scan.torn} (intact record at offset "
                    f"{damage.resync_offset}, lsn {damage.resync_lsn})",
                )
                raise WalCorruptionError(
                    f"{self._directory}: {scan.torn}; an intact record "
                    f"(lsn {damage.resync_lsn}) follows the damage, so "
                    f"this is non-tail corruption -- the segment is "
                    f"quarantined; repair from a healthy peer before "
                    f"reopening the log for writing"
                )
            # A torn tail in the last segment is the normal signature of
            # a crash mid-append: cut it off and continue after the
            # committed prefix.
            with open(scan.torn.segment, "r+b") as handle:
                handle.truncate(scan.torn.offset)
                handle.flush()
                os.fsync(handle.fileno())
            self._stats["torn_tail_repaired"] += 1
        if scan.segments:
            current = scan.segments[-1]
            self._handle = disk.open(current, "ab")
            self._segment_path = current
        else:
            self._start_segment(1)

    def _start_segment(self, first_lsn: int) -> None:
        path = os.path.join(
            self._directory, f"segment-{first_lsn:010d}.wal"
        )
        handle = disk.open(path, "ab")
        if handle.tell() == 0:
            handle.write(MAGIC)
            handle.flush()
            disk.fsync(handle)
        self._handle = handle
        self._segment_path = path
        _fsync_directory(self._directory)

    def close(self) -> None:
        """Flush, fsync and close the current segment."""
        with self._lock:
            if self._handle is None:
                return
            with contextlib.suppress(OSError, ValueError):
                self._handle.flush()
                os.fsync(self._handle.fileno())
            with contextlib.suppress(OSError):
                self._handle.close()
            self._handle = None

    def reopen(self) -> None:
        """Recover a failed writer in place (ISSUE 10).

        Closes the current handle, truncates any torn tail the failed
        append left on disk, and resumes after the committed prefix --
        the disk-full recovery rung: after ``ENOSPC`` poisoned the
        writer and a checkpoint reclaimed space, the server reopens the
        log and retries the shed write instead of degrading to
        snapshot-only durability.

        Raises:
            WalWriteError: the log was *fenced*, not failed -- a higher
                epoch exists elsewhere and no reopen may resurrect it.
            WalCorruptionError: the directory holds non-tail corruption
                or quarantined segments; repair first.
        """
        with self._lock:
            if self._fenced:
                raise WalWriteError(
                    f"log at {self._directory} is fenced ({self._failed}); "
                    f"a fenced log never resumes appending"
                )
            if self._handle is not None:
                with contextlib.suppress(OSError, ValueError):
                    self._handle.close()
            self._handle = None
            self._failed = None
            self._failed_disk = None
            self._pending = 0
            self._open_tail()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        """The log directory."""
        return self._directory

    @property
    def lsn(self) -> int:
        """The last appended record's lsn (0 when the log is empty)."""
        return self._lsn

    @property
    def fsync_policy(self) -> FsyncPolicy:
        """The active durability policy."""
        return self._policy

    @property
    def failed(self) -> Optional[str]:
        """Why the log refuses appends, or None while healthy."""
        return self._failed

    @property
    def epoch(self) -> int:
        """The fencing epoch stamped into appended records (0 = the
        implicit pre-failover epoch, stamped as an absent field)."""
        return self._epoch

    def fence(self, epoch: int) -> None:
        """Refuse all further appends: a higher epoch exists elsewhere.

        Called on a deposed primary's log when a promotion to ``epoch``
        is observed.  Every later append raises
        :class:`~repro.errors.WalWriteError` naming the fencing epoch;
        the log's on-disk state is untouched (re-opening reads the
        committed prefix as usual).  Idempotent; fencing at an epoch at
        or below the log's own is refused (that would be fencing the
        current primary with its own epoch).
        """
        with self._lock:
            if epoch <= self._epoch:
                raise ValueError(
                    f"cannot fence epoch {self._epoch} log with epoch "
                    f"{epoch} (fencing epoch must be higher)"
                )
            self._fenced = True
            self._failed = (
                f"fenced: epoch {epoch} supersedes this log's epoch "
                f"{self._epoch}"
            )

    @property
    def stats(self) -> Dict[str, int]:
        """Counters: appends, fsyncs, deferred_fsyncs, grouped_appends,
        group_syncs, rotations, checkpoints, state_fallbacks,
        torn_tail_repaired."""
        with self._lock:
            return dict(self._stats)

    # ------------------------------------------------------------------
    # following
    # ------------------------------------------------------------------
    def stream(self, from_lsn: int = 0) -> "WalStream":
        """A :class:`WalStream` following this log's directory.

        The stream reads the segment files directly (no shared state
        with the writer beyond the filesystem), so it behaves the same
        whether the follower runs in this process or another one;
        replicas normally construct :class:`WalStream` against the
        directory path instead.

        Args:
            from_lsn: deliver records after this lsn (0 = everything
                retained).
        """
        return WalStream(self._directory, from_lsn)

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, payload: Dict[str, Any]) -> int:
        """Append one record; returns its lsn.

        The payload must be JSON-serializable; ``lsn`` is assigned
        here.  Under fsync policy ``always`` the record is durable when
        this returns; under ``batch``/``os`` it may still be in flight
        (see :meth:`sync`).

        Raises:
            WalWriteError: the log previously failed (torn in-memory
                state) or the filesystem refused the write/fsync;
                nothing may be appended afterwards until the log is
                re-opened.
            InjectedFault: an armed ``wal-*`` kill-point fired
                (crash simulation; the log behaves exactly as a real
                crash at that instant would leave it).
        """
        with self._lock:
            return self._append_locked(payload)

    def _append_locked(self, payload: Dict[str, Any]) -> int:
        if self._failed is not None:
            # A refusal caused by a disk error keeps carrying that
            # classification: every commit the poisoned log turns away
            # is still a disk-sick signal for the serving layer.
            raise WalWriteError(
                f"write-ahead log at {self._directory} is failed "
                f"({self._failed}); re-open it to resume after the "
                f"committed prefix",
                disk=self._failed_disk,
            )
        lsn = self._lsn + 1
        kind = payload.get("kind", "?")
        kill_point("wal-before-append", lsn=lsn, kind=kind)
        record = dict(payload)
        record["lsn"] = lsn
        if self._epoch:
            # Epoch 0 is stamped as an absent field so pre-epoch logs
            # and post-epoch logs that never failed over stay
            # byte-compatible; readers use payload.get("epoch", 0).
            record["epoch"] = self._epoch
        buf = json.dumps(
            record, ensure_ascii=False, separators=(",", ":")
        ).encode("utf-8")
        header = _HEADER.pack(len(buf), zlib.crc32(buf) & 0xFFFFFFFF)
        half = len(buf) // 2
        handle = self._handle
        if handle is None:
            raise WalWriteError(f"log at {self._directory} is closed")
        # From the first header byte to the last payload byte the
        # on-disk tail is torn; only a completed write clears the mark.
        self._failed = f"append of lsn {lsn} did not complete"
        try:
            handle.write(header)
            handle.write(buf[:half])
            handle.flush()
            kill_point("wal-mid-record", lsn=lsn, kind=kind)
            handle.write(buf[half:])
            handle.flush()
        except OSError as exc:
            self._failed_disk = classify_disk_error(
                exc, path=self._segment_path, op="append"
            )
            raise WalWriteError(
                f"append of lsn {lsn} failed mid-record: {exc}",
                disk=self._failed_disk,
            ) from exc
        except ValueError as exc:  # closed handle
            raise WalWriteError(
                f"append of lsn {lsn} failed mid-record: {exc}"
            ) from exc
        self._failed = None
        self._failed_disk = None
        self._lsn = lsn
        self._stats["appends"] += 1
        self._pending += 1
        kill_point("wal-before-fsync", lsn=lsn, kind=kind)
        self._maybe_fsync()
        if handle.tell() >= self._segment_bytes:
            self._rotate_locked()
        return lsn

    def _maybe_fsync(self) -> None:
        if self._group_threads and threading.get_ident() in self._group_threads:
            # Inside a group-commit window: this append's fsync is the
            # group's problem (one sync_group() covers every member),
            # whatever the configured policy says.
            self._stats["grouped_appends"] += 1
            return
        policy = self._policy
        if policy.kind == "os":
            return
        if policy.kind == "batch":
            due = (
                self._pending >= policy.batch_records
                or (self._clock() - self._last_sync) * 1000.0
                >= policy.batch_ms
            )
            if not due:
                self._stats["deferred_fsyncs"] += 1
                return
        self._fsync_now()

    def _fsync_now(self) -> None:
        try:
            disk.fsync(self._handle)
        except OSError as exc:
            # After a failed fsync the kernel may have dropped the dirty
            # pages; the only safe stance is to stop trusting the tail.
            self._failed = f"fsync failed: {exc}"
            self._failed_disk = classify_disk_error(
                exc, path=self._segment_path, op="fsync"
            )
            raise WalWriteError(
                f"fsync of {self._segment_path} failed: {exc}",
                disk=self._failed_disk,
            ) from exc
        except ValueError as exc:  # closed handle
            self._failed = f"fsync failed: {exc}"
            raise WalWriteError(
                f"fsync of {self._segment_path} failed: {exc}"
            ) from exc
        self._pending = 0
        self._last_sync = self._clock()
        self._stats["fsyncs"] += 1

    def sync(self) -> None:
        """Force any pending appends to stable storage.

        Raises:
            WalWriteError: the fsync failed (the log is failed
                afterwards).
        """
        with self._lock:
            if self._handle is not None and self._pending:
                self._handle.flush()
                self._fsync_now()

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def group(self):
        """A group-commit window, scoped to the calling thread.

        While the block is open, every record *this thread* appends --
        directly or through the commit hook deep inside
        ``Session.execute`` -- skips its per-record fsync, whatever the
        configured policy (counted as ``grouped_appends``).  The caller
        must finish with :meth:`sync_group` before acknowledging any of
        the grouped commits: that is the single fsync amortized over
        the whole group.  Appends from *other* threads are unaffected
        (they keep the configured policy), so a group leader batching
        on behalf of parked followers never weakens an unrelated
        writer's durability.
        """
        ident = threading.get_ident()
        with self._lock:
            self._group_threads.add(ident)
        try:
            yield self
        finally:
            with self._lock:
                self._group_threads.discard(ident)

    @contextlib.contextmanager
    def annotate(self, **fields: Any):
        """Merge ``fields`` into commit payloads logged by this thread.

        Scoped exactly like :meth:`group`: while the block is open,
        every commit record *this thread* appends through
        :meth:`log_commit` -- however deep inside ``Session.execute``
        the commit point sits -- carries the extra fields.  The serving
        layer uses this to thread a client idempotency key (``idem``)
        into the committed record so replicas and recovery rebuild the
        dedup table from the log alone.  Reserved payload keys
        (``lsn``, ``kind``, ``epoch``, ``version``) are refused.
        """
        for key in fields:
            if key in ("lsn", "kind", "epoch", "version"):
                raise ValueError(f"annotation may not set reserved key {key!r}")
        ident = threading.get_ident()
        with self._lock:
            self._annotations[ident] = dict(fields)
        try:
            yield self
        finally:
            with self._lock:
                self._annotations.pop(ident, None)

    def sync_group(self) -> bool:
        """The group's one fsync: force every deferred append durable.

        Returns:
            True when an fsync was actually issued (False when nothing
            was pending -- e.g. a rotation already synced the batch).

        Raises:
            WalWriteError: the fsync failed (the log is failed
                afterwards; none of the group may be acknowledged).
        """
        with self._lock:
            if self._handle is None or not self._pending:
                return False
            self._handle.flush()
            self._fsync_now()
            self._stats["group_syncs"] += 1
            return True

    def append_many(self, payloads) -> List[int]:
        """Append several records with one fsync for the whole batch.

        The multi-record form of :meth:`append`: every payload is
        written (each individually checksummed and lsn-stamped), then a
        single fsync makes the batch durable.  Returns the lsns in
        order.

        Raises:
            WalWriteError: an append or the batch fsync failed; records
                written before the failure follow the normal torn-tail
                rule on recovery.
        """
        with self._lock:
            ident = threading.get_ident()
            self._group_threads.add(ident)
            try:
                lsns = [self._append_locked(payload) for payload in payloads]
            finally:
                self._group_threads.discard(ident)
            self.sync_group()
            return lsns

    def _rotate_locked(self) -> None:
        try:
            self._handle.flush()
            with contextlib.suppress(OSError):
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._pending = 0
            self._start_segment(self._lsn + 1)
        except OSError as exc:
            # A rotation that cannot open/seed the next segment leaves
            # no trustworthy writer; poison it like a failed append.
            self._failed = f"rotation failed: {exc}"
            self._failed_disk = classify_disk_error(
                exc, path=self._directory, op="rotate"
            )
            raise WalWriteError(
                f"segment rotation at lsn {self._lsn} failed: {exc}",
                disk=self._failed_disk,
            ) from exc
        self._stats["rotations"] += 1

    # ------------------------------------------------------------------
    # the commit hook
    # ------------------------------------------------------------------
    def log_commit(
        self,
        version: int,
        document,
        subjects,
        policy,
        changes,
        origin,
    ) -> int:
        """Append the record for one commit; called by the database's
        commit point (under its commit lock) *before* the install.

        A replayable origin (a session or admin script) is logged as
        its XUpdate text, round-trip-verified; anything else -- a
        direct ``commit()`` of a document, an operation with no XUpdate
        spelling -- falls back to a full ``state`` snapshot record
        (counted in :attr:`stats` as ``state_fallbacks``).

        Raises:
            WalWriteError: the record could not be made durable; the
                caller must *not* install the commit.
        """
        payload = self._commit_payload(
            version, document, subjects, policy, changes, origin
        )
        with self._lock:
            extra = self._annotations.get(threading.get_ident())
            if extra:
                payload.update(extra)
            return self._append_locked(payload)

    def _commit_payload(
        self, version, document, subjects, policy, changes, origin
    ) -> Dict[str, Any]:
        if origin is not None and origin.kind in ("update", "admin"):
            try:
                script = dump_xupdate(origin.operation)
            except XUpdateSerializeError:
                pass  # fall through to the state snapshot
            else:
                payload: Dict[str, Any] = {
                    "kind": origin.kind,
                    "version": version,
                    "script": script,
                }
                if origin.kind == "update":
                    payload["user"] = origin.user
                    payload["strict"] = bool(origin.strict)
                if changes is not None and not changes.conservative:
                    payload["touched"] = len(changes.touched_roots())
                return payload
        from ..storage import dump_state

        with self._lock:
            self._stats["state_fallbacks"] += 1
        return {
            "kind": "state",
            "version": version,
            "data": dump_state(document, subjects, policy),
        }

    # ------------------------------------------------------------------
    # binding to a database
    # ------------------------------------------------------------------
    def bind(self, database) -> None:
        """Subscribe to the database's subject/policy mutation streams.

        Called by :meth:`SecureXMLDatabase.attach_wal`; commits are
        captured separately through :meth:`log_commit`.
        """
        if self._bound_db is not None:
            raise ValueError("log already bound to a database")
        self._bound_db = database
        database.subjects.subscribe(self._on_subjects)
        database.policy.subscribe(self._on_policy)

    def unbind(self) -> None:
        """Undo :meth:`bind` (idempotent)."""
        database, self._bound_db = self._bound_db, None
        if database is None:
            return
        database.subjects.unsubscribe(self._on_subjects)
        database.policy.unsubscribe(self._on_policy)

    def _on_subjects(self, op: str, *args) -> None:
        self.append({"kind": "subjects", "op": op, "args": list(args)})

    def _on_policy(self, op: str, *args) -> None:
        self.append({"kind": "policy", "op": op, "args": list(args)})

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, database) -> str:
        """Write a snapshot of ``database``, rotate, and prune.

        The snapshot (a :func:`repro.storage.dump_database` file with
        integrity header, named ``checkpoint-<lsn>-<version>.xml``,
        with an ``-e<epoch>`` suffix once the log's fencing epoch is
        nonzero) bounds recovery work: replay starts from the newest
        loadable snapshot.  After the snapshot the segment is rotated and
        retention applied -- the newest ``retain_checkpoints``
        snapshots survive, along with every segment needed to replay
        from the *oldest* surviving one.

        Takes the database's commit lock: the snapshot is a frozen
        (version, document, subjects, policy) cut with no commit half
        included.  Callers must not already hold that lock.

        Returns:
            The snapshot file path.
        """
        from ..storage import dump_database

        with database._commit_lock:  # freeze the commit point
            with self._lock:
                self.sync()  # the log must cover everything pre-snapshot
                lsn, version = self._lsn, database.version
                payload = dump_database(database) + "\n"
                suffix = f"-e{self._epoch}" if self._epoch else ""
                path = os.path.join(
                    self._directory,
                    f"checkpoint-{lsn:010d}-{version:010d}{suffix}.xml",
                )
                self._write_snapshot(payload, path)
                self._rotate_locked()
                self._append_locked(
                    {
                        "kind": "checkpoint",
                        "version": version,
                        "snapshot": os.path.basename(path),
                    }
                )
                self.sync()
                self._stats["checkpoints"] += 1
                self._prune_locked()
        return path

    def _write_snapshot(self, payload: str, path: str) -> None:
        fd, temp_path = tempfile.mkstemp(
            dir=self._directory,
            prefix=os.path.basename(path) + ".",
            suffix=".tmp",
        )
        try:
            with disk.wrap(os.fdopen(fd, "w", encoding="utf-8"), temp_path) as handle:
                half = len(payload) // 2
                handle.write(payload[:half])
                handle.flush()
                kill_point("checkpoint-mid-snapshot", path=path)
                handle.write(payload[half:])
                handle.flush()
                disk.fsync(handle)
            os.replace(temp_path, path)
            _fsync_directory(self._directory)
        except OSError as exc:
            with contextlib.suppress(OSError):
                os.unlink(temp_path)
            raise classify_disk_error(exc, path=path, op="checkpoint") from exc
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp_path)
            raise

    def _prune_locked(self) -> None:
        checkpoints = list_checkpoints(self._directory)
        for stale in checkpoints[:-self._retain]:
            with contextlib.suppress(OSError):
                os.unlink(stale.path)
        kept = checkpoints[-self._retain:]
        if not kept:
            return
        keep_from_lsn = kept[0].lsn
        files = _segment_files(self._directory)
        for index, (_first, path) in enumerate(files[:-1]):
            next_first = files[index + 1][0]
            if next_first <= keep_from_lsn + 1 and path != self._segment_path:
                with contextlib.suppress(OSError):
                    os.unlink(path)


def _fsync_directory(directory: str) -> None:
    """Directory fsync, degrading to a logged best-effort (see
    :func:`repro.storage._fsync_directory`, which this defers to)."""
    from ..storage import _fsync_directory as fsync_dir

    fsync_dir(directory)
