"""Audit log behaviour."""

import pytest

from repro.security import AuditLog, Privilege
from repro.xmltree import DOCUMENT_ID
from repro.xupdate import UpdateContent


class TestAuditLog:
    def test_records_are_sequenced(self):
        log = AuditLog()
        r1 = log.record("u", "Rename", "//a", DOCUMENT_ID, Privilege.UPDATE, True)
        r2 = log.record("u", "Rename", "//a", DOCUMENT_ID, Privilege.UPDATE, False, "no")
        assert r1.sequence < r2.sequence
        assert len(log) == 2

    def test_denials_filter(self):
        log = AuditLog()
        log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, False, "r")
        assert len(log.denials()) == 1
        assert not log.denials()[0].allowed

    def test_for_user_filter(self):
        log = AuditLog()
        log.record("alice", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        log.record("bob", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        assert len(log.for_user("alice")) == 1

    def test_clear(self):
        log = AuditLog()
        log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        log.clear()
        assert len(log) == 0

    def test_str_mentions_verdict(self):
        log = AuditLog()
        ok = log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        no = log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, False, "why")
        assert "ALLOW" in str(ok)
        assert "DENY" in str(no)
        assert "why" in str(no)


class TestDatabaseIntegration:
    def test_database_writes_are_audited(self, db):
        secretary = db.login("beaufort")
        secretary.execute(UpdateContent("/patients/franck/diagnosis", "x"))
        assert len(db.audit) > 0
        denials = db.audit.denials()
        assert denials
        assert all(r.user == "beaufort" for r in denials)

    def test_allowed_writes_recorded_too(self, db):
        doctor = db.login("laporte")
        doctor.execute(UpdateContent("/patients/franck/diagnosis", "flu"))
        allowed = [r for r in db.audit if r.allowed]
        assert allowed
        assert allowed[0].operation == "UpdateContent"


class TestAbortRecords:
    def test_record_abort_fields(self):
        log = AuditLog()
        entry = log.record_abort(
            user="u",
            operation="Remove",
            path="//a",
            reason="injected fault",
            operation_index=2,
            rolled_back=2,
        )
        assert entry.event == "abort"
        assert not entry.allowed
        assert entry.rolled_back == 2
        assert entry.node is None and entry.privilege is None
        assert "aborted at operation 2" in entry.reason

    def test_aborts_filter(self):
        log = AuditLog()
        log.record("u", "Op", "//a", DOCUMENT_ID, Privilege.READ, True)
        log.record_abort(user="u", operation="Op", path="//a", reason="boom")
        assert len(log.aborts()) == 1
        assert len(log.denials()) == 1  # the abort counts as denied

    def test_abort_str_format(self):
        log = AuditLog()
        entry = log.record_abort(
            user="u", operation="Rename", path="//a", reason="x", rolled_back=3
        )
        text = str(entry)
        assert "ABORT" in text
        assert "rolled back 3" in text
