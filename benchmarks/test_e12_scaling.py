"""E12 (added): scaling of view derivation and secure writes.

Series:
- view materialization time vs document size (50..800 patients);
- secure write (update one diagnosis) vs document size;
- view materialization vs policy size (the paper's 12 rules replicated
  k times with alternating effects).

The paper's model materializes the full view (axioms 15-17), so view
cost is expected to grow linearly in document size and in rule count;
these benches verify that shape.
"""

import pytest

from conftest import synthetic_hospital

from repro.xupdate import UpdateContent


@pytest.mark.parametrize("patients", [50, 100, 200, 400, 800])
def test_e12_view_vs_document_size(benchmark, patients):
    db = synthetic_hospital(patients)

    def run():
        view = db.build_view("beaufort")
        # Every diagnosis text is RESTRICTED for the secretary.
        assert len(view.restricted) == patients
        return view

    benchmark(run)


@pytest.mark.parametrize("patients", [50, 200, 800])
def test_e12_secure_write_vs_document_size(benchmark, patients):
    db = synthetic_hospital(patients)
    target = "/patients/patient00007/diagnosis"

    def run():
        view = db.build_view("laporte")
        from repro.security import SecureWriteExecutor

        result = SecureWriteExecutor().apply(
            view, UpdateContent(target, "revised")
        )
        assert len(result.affected) == 1
        return result

    benchmark(run)


@pytest.mark.parametrize("copies", [1, 4, 16])
def test_e12_view_vs_policy_size(benchmark, copies):
    db = synthetic_hospital(100)
    # Pad the policy: alternating deny/grant pairs that cancel out,
    # forcing the resolver to replay a longer rule list.
    for _ in range(copies - 1):
        db.policy.deny("read", "//service/*", "secretary")
        db.policy.grant("read", "//service/*", "secretary")

    def run():
        view = db.build_view("beaufort")
        assert len(view.restricted) == 100
        return view

    benchmark(run)


@pytest.mark.parametrize("patients", [100, 400])
def test_e12_query_on_view_vs_size(benchmark, patients):
    db = synthetic_hospital(patients)
    session = db.login("richard")
    session.view()  # materialize once; bench the query path

    def run():
        return session.query("count(//diagnosis)")

    count = benchmark(run)
    assert count == float(patients)
