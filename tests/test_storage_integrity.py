"""ISSUE 5 storage satellites: the snapshot integrity header, rolling
backup generations, and the directory-fsync degradation."""

import logging
import os

import pytest

from repro.errors import StorageCorrupt
from repro.security import Policy, SecureXMLDatabase, SubjectHierarchy
from repro.storage import (
    LoadReport,
    _fsync_directory,
    backup_path,
    dump_database,
    load_database,
    load_from_file,
    save_to_file,
)
from repro.xmltree import XMLDocument, element


def tiny_database(marker: str = "seed") -> SecureXMLDatabase:
    doc = XMLDocument()
    root = doc.add_root("log")
    element("entry", marker).attach(doc, root)
    subjects = SubjectHierarchy()
    subjects.add_user("alice")
    policy = Policy(subjects)
    policy.grant("read", "//*", "alice")
    return SecureXMLDatabase(doc, subjects, policy)


class TestIntegrityHeader:
    def test_dump_carries_a_sha256_header(self):
        text = dump_database(tiny_database())
        first = text.splitlines()[0]
        assert first.startswith('<?repro-integrity sha256="')
        assert load_database(text).subjects.users == {"alice"}

    def test_tampering_fails_a_strict_load(self):
        text = dump_database(tiny_database())
        tampered = text.replace("entry>seed<", "entry>SEED<")
        with pytest.raises(StorageCorrupt) as info:
            load_database(tampered)
        assert "integrity" in str(info.value)
        assert ".bak" in str(info.value)  # points at the escape hatch

    def test_tampering_is_reported_not_fatal_in_lenient_mode(self):
        text = dump_database(tiny_database())
        tampered = text.replace("entry>seed<", "entry>SEED<")
        report = LoadReport()
        db = load_database(tampered, mode="lenient", report=report)
        assert not report.clean
        assert any("sha256" in str(p) for p in report.problems)
        assert db.subjects.users == {"alice"}  # still loaded what it could

    def test_headerless_files_still_load(self):
        """Older dumps and hand-written fixtures carry no header; the
        check is skipped, not failed."""
        text = dump_database(tiny_database())
        body = text.split("\n", 1)[1]
        assert not body.startswith("<?repro-integrity")
        assert load_database(body).subjects.users == {"alice"}

    def test_saved_files_verify_on_load(self, tmp_path):
        path = str(tmp_path / "db.xml")
        save_to_file(tiny_database(), path)
        assert load_from_file(path).subjects.users == {"alice"}
        content = open(path, encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(
            content.replace("seed", "evil")
        )
        with pytest.raises(StorageCorrupt):
            load_from_file(path)


class TestRollingBackups:
    def test_backup_path_spelling(self):
        assert backup_path("db.xml") == "db.xml.bak"
        assert backup_path("db.xml", 2) == "db.xml.bak2"
        assert backup_path("db.xml", 3) == "db.xml.bak3"
        with pytest.raises(ValueError):
            backup_path("db.xml", 0)

    def save_generations(self, path, markers, **kwargs):
        for marker in markers:
            save_to_file(tiny_database(marker), path, **kwargs)

    def marker_in(self, path):
        text = open(path, encoding="utf-8").read()
        return text.split("<entry>")[1].split("</entry>")[0]

    def test_default_keeps_one_backup(self, tmp_path):
        path = str(tmp_path / "db.xml")
        self.save_generations(path, ["v1", "v2", "v3"])
        assert self.marker_in(path) == "v3"
        assert self.marker_in(backup_path(path)) == "v2"
        assert not os.path.exists(backup_path(path, 2))

    def test_rolling_generations(self, tmp_path):
        path = str(tmp_path / "db.xml")
        self.save_generations(
            path, ["v1", "v2", "v3", "v4"], backup_count=3
        )
        assert self.marker_in(path) == "v4"
        assert self.marker_in(backup_path(path)) == "v3"
        assert self.marker_in(backup_path(path, 2)) == "v2"
        assert self.marker_in(backup_path(path, 3)) == "v1"
        # one more save drops the oldest generation off the end
        save_to_file(tiny_database("v5"), path, backup_count=3)
        assert self.marker_in(backup_path(path, 3)) == "v2"
        assert not os.path.exists(backup_path(path, 4))

    def test_every_backup_generation_loads(self, tmp_path):
        path = str(tmp_path / "db.xml")
        self.save_generations(path, ["v1", "v2", "v3"], backup_count=2)
        for candidate in (path, backup_path(path), backup_path(path, 2)):
            assert load_from_file(candidate).subjects.users == {"alice"}

    def test_backup_disabled(self, tmp_path):
        path = str(tmp_path / "db.xml")
        self.save_generations(path, ["v1", "v2"], backup=False)
        assert not os.path.exists(backup_path(path))

    def test_backup_count_validated(self, tmp_path):
        with pytest.raises(ValueError):
            save_to_file(
                tiny_database(), str(tmp_path / "db.xml"), backup_count=0
            )


class TestDirectoryFsyncDegradation:
    def test_unopenable_directory_logs_a_warning(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.storage"):
            _fsync_directory("/no/such/directory/anywhere")
        assert any(
            "cannot open directory" in r.message for r in caplog.records
        )

    def test_fsync_refusal_logs_not_raises(self, tmp_path, caplog,
                                           monkeypatch):
        """EINVAL from a directory fsync (network/overlay mounts) must
        degrade to a warning, never kill the commit."""
        import repro.storage as storage

        def refuse(fd):
            raise OSError(22, "Invalid argument")

        monkeypatch.setattr(storage.os, "fsync", refuse)
        with caplog.at_level(logging.WARNING, logger="repro.storage"):
            _fsync_directory(str(tmp_path))
        assert any(
            "directory fsync failed" in r.message for r in caplog.records
        )

    def test_save_survives_a_directory_fsync_refusal(
        self, tmp_path, monkeypatch
    ):
        import repro.storage as storage

        real_fsync = os.fsync

        def picky(fd):
            if os.fstat(fd).st_mode & 0o040000:  # directories only
                raise OSError(22, "Invalid argument")
            real_fsync(fd)

        monkeypatch.setattr(storage.os, "fsync", picky)
        path = str(tmp_path / "db.xml")
        save_to_file(tiny_database("ok"), path)
        assert load_from_file(path).subjects.users == {"alice"}
