"""The atomicity invariant under injected faults.

For every named executor kill-point and every operation index of a
multi-operation script: a failed script must leave every session's view
byte-identical to its pre-script view, the database document unchanged,
and the version counter untouched -- the paper's all-or-nothing theory
replacement, enforced operationally.
"""

import pytest

from repro.core import hospital_database
from repro.errors import ConcurrentUpdateError, UpdateAborted
from repro.security.write import AccessDenied
from repro.testing.faults import InjectedFault, inject
from repro.xmltree import element, serialize
from repro.xmltree.fragments import text
from repro.xupdate import (
    Append,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
)

pytestmark = pytest.mark.fault

EXECUTOR_KILL_POINTS = ("before-op", "after-op")

#: A three-operation script entirely within the doctor's privileges
#: (rules 10-12: insert on //diagnosis, update/delete on //diagnosis/*).
def doctor_script():
    return UpdateScript(
        [
            UpdateContent("/patients/franck/diagnosis", "flu"),
            Append("//diagnosis", element("note", text("checked"))),
            Remove("/patients/robert/diagnosis/text()"),
        ]
    )


def snapshot(db, users=("laporte", "beaufort", "richard", "robert")):
    """Fingerprint every session view plus the raw document."""
    views = {u: db.login(u).view().fingerprint() for u in users}
    return views, serialize(db.document), db.version


class TestSecureScriptAtomicity:
    @pytest.mark.parametrize("point", EXECUTOR_KILL_POINTS)
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_failed_script_changes_nothing(self, point, index):
        db = hospital_database()
        sessions = {u: db.login(u) for u in ("laporte", "beaufort", "richard")}
        before_views = {u: s.view().fingerprint() for u, s in sessions.items()}
        before_xml = {u: s.read_xml() for u, s in sessions.items()}
        before_doc = serialize(db.document)
        before_version = db.version

        with inject(point, after=index):
            with pytest.raises(UpdateAborted) as info:
                sessions["laporte"].execute(doctor_script(), strict=True)

        assert info.value.operation_index == index
        assert info.value.completed == index
        assert isinstance(info.value.__cause__, InjectedFault)
        # The atomicity invariant: nothing observable moved.
        assert db.version == before_version
        assert serialize(db.document) == before_doc
        for user, session in sessions.items():
            assert session.view().fingerprint() == before_views[user]
            assert session.read_xml() == before_xml[user]
        # Fresh sessions see the pre-script theory too.
        for user in sessions:
            assert db.login(user).view().fingerprint() == before_views[user]

    def test_script_succeeds_when_nothing_is_armed(self):
        db = hospital_database()
        doctor = db.login("laporte")
        before_version = db.version
        result = doctor.execute(doctor_script(), strict=True)
        assert result.fully_applied
        assert db.version == before_version + 1
        assert "flu" in doctor.read_xml()

    def test_abort_reports_savepoint_but_never_installs_it(self):
        db = hospital_database()
        doctor = db.login("laporte")
        with inject("before-op", after=1):
            with pytest.raises(UpdateAborted) as info:
                doctor.execute(doctor_script(), strict=True)
        # The savepoint holds the document after operation 0...
        assert info.value.savepoint is not None
        assert "flu" in serialize(info.value.savepoint)
        # ...but the database never saw it.
        assert "flu" not in serialize(db.document)

    def test_strict_denial_mid_script_rolls_back_earlier_ops(self):
        db = hospital_database()
        secretary = db.login("beaufort")
        before = secretary.view().fingerprint()
        before_doc = serialize(db.document)
        script = UpdateScript(
            [
                # Allowed: rule 8 grants the secretary insert on /patients.
                Append("/patients", element("newpatient")),
                # Denied: updating diagnosis *content* needs update+read
                # on the text child, which the secretary does not hold.
                UpdateContent("/patients/franck/diagnosis", "oops"),
            ]
        )
        with pytest.raises(AccessDenied):
            secretary.execute(script, strict=True)
        assert serialize(db.document) == before_doc
        assert secretary.view().fingerprint() == before
        assert "newpatient" not in serialize(db.document)

    def test_abort_is_audited_with_rolled_back_count(self):
        db = hospital_database()
        doctor = db.login("laporte")
        with inject("after-op", after=1):
            with pytest.raises(UpdateAborted):
                doctor.execute(doctor_script(), strict=True)
        aborts = db.audit.aborts()
        assert len(aborts) == 1
        record = aborts[0]
        assert record.user == "laporte"
        assert record.event == "abort"
        assert record.rolled_back == 1
        assert not record.allowed
        assert "aborted at operation 1" in record.reason
        assert "ABORT" in str(record)

    def test_denied_abort_is_audited(self):
        db = hospital_database()
        secretary = db.login("beaufort")
        script = UpdateScript(
            [
                Append("/patients", element("p2")),
                UpdateContent("/patients/franck/diagnosis", "oops"),
            ]
        )
        with pytest.raises(AccessDenied):
            secretary.execute(script, strict=True)
        aborts = db.audit.aborts()
        assert len(aborts) == 1
        assert aborts[0].rolled_back == 1
        assert "denied" in aborts[0].reason

    @pytest.mark.parametrize("point", EXECUTOR_KILL_POINTS)
    def test_lazy_sessions_hold_the_invariant_too(self, point):
        db = hospital_database()
        doctor = db.login("laporte", enforcement="lazy")
        watcher = db.login("richard", enforcement="lazy")
        before = (doctor.read_xml(), watcher.read_xml(), db.version)
        with inject(point, after=1):
            with pytest.raises(UpdateAborted):
                doctor.execute(doctor_script(), strict=True)
        assert (doctor.read_xml(), watcher.read_xml(), db.version) == before


class TestUnsecuredScriptAtomicity:
    @pytest.mark.parametrize("point", EXECUTOR_KILL_POINTS)
    @pytest.mark.parametrize("index", [0, 1])
    def test_admin_script_failure_changes_nothing(self, point, index):
        db = hospital_database()
        before_doc = serialize(db.document)
        before_version = db.version
        script = UpdateScript(
            [
                Rename("//service", "svc"),
                Remove("//diagnosis"),
            ]
        )
        with inject(point, after=index):
            with pytest.raises(UpdateAborted):
                db.admin_update(script)
        assert serialize(db.document) == before_doc
        assert db.version == before_version

    def test_internal_error_mid_script_rolls_back(self):
        db = hospital_database()
        before_doc = serialize(db.document)
        script = UpdateScript(
            [
                Rename("//service", "svc"),
                # XUpdateError: the document node has no siblings.
                InsertBefore("/", element("x")),
            ]
        )
        with pytest.raises(UpdateAborted) as info:
            db.admin_update(script)
        assert info.value.operation_index == 1
        assert info.value.operation == "InsertBefore"
        assert serialize(db.document) == before_doc


class TestTransactionObject:
    def test_commit_installs_and_bumps_version(self):
        db = hospital_database()
        version = db.version
        with db.transaction() as txn:
            new_doc = db.document.copy()
            txn.commit(new_doc)
        assert db.version == version + 1
        assert db.document is new_doc
        assert not txn.active

    def test_rollback_leaves_database_untouched(self):
        db = hospital_database()
        doc, version = db.document, db.version
        txn = db.transaction()
        txn.rollback()
        assert db.document is doc and db.version == version

    def test_exception_in_with_block_rolls_back(self):
        db = hospital_database()
        doc, version = db.document, db.version
        with pytest.raises(RuntimeError):
            with db.transaction():
                raise RuntimeError("boom")
        assert db.document is doc and db.version == version

    def test_concurrent_commit_is_refused(self):
        db = hospital_database()
        txn = db.transaction()
        db.admin_update(Rename("//service", "svc"))  # interleaved commit
        with pytest.raises(ConcurrentUpdateError):
            txn.commit(db.document.copy())
        assert not txn.active

    def test_double_commit_is_refused(self):
        db = hospital_database()
        txn = db.transaction()
        txn.commit(db.document.copy())
        with pytest.raises(RuntimeError):
            txn.commit(db.document.copy())
