"""Operation description objects: immutability and metadata."""

import dataclasses

import pytest

from repro.xmltree import element
from repro.xupdate import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
)


class TestDescriptions:
    def test_operations_are_frozen(self):
        op = Rename("//a", "b")
        with pytest.raises(dataclasses.FrozenInstanceError):
            op.path = "//c"  # type: ignore[misc]

    def test_equality_by_value(self):
        assert Rename("//a", "b") == Rename("//a", "b")
        assert Remove("//a") != Remove("//b")

    def test_required_privileges_match_section_4_4_2(self):
        tree = element("x")
        assert Rename("//a", "b").required_privilege == "update"
        assert UpdateContent("//a", "v").required_privilege == "update"
        assert Append("//a", tree).required_privilege == "insert"
        assert InsertBefore("//a", tree).required_privilege == "insert"
        assert InsertAfter("//a", tree).required_privilege == "insert"
        assert Remove("//a").required_privilege == "delete"


class TestUpdateScript:
    def test_iteration_and_length(self):
        ops = (Rename("//a", "b"), Remove("//b"))
        script = UpdateScript(ops)
        assert len(script) == 2
        assert tuple(script) == ops

    def test_empty_script(self):
        assert len(UpdateScript(())) == 0
