"""Value conversion tests (spec sections 4.2-4.4)."""

import math

import pytest

from repro.xmltree import parse_xml
from repro.xpath.values import (
    is_node_set,
    number_to_string,
    sort_document_order,
    to_boolean,
    to_number,
    to_string,
)


@pytest.fixture
def doc():
    return parse_xml("<r><a>first</a><a>second</a></r>")


class TestToBoolean:
    def test_nodeset(self, doc):
        assert to_boolean([doc.root]) is True
        assert to_boolean([]) is False

    def test_numbers(self):
        assert to_boolean(1.0) is True
        assert to_boolean(-0.5) is True
        assert to_boolean(0.0) is False
        assert to_boolean(math.nan) is False
        assert to_boolean(math.inf) is True

    def test_strings(self):
        assert to_boolean("x") is True
        assert to_boolean("") is False
        assert to_boolean("false") is True  # non-empty!

    def test_booleans_pass_through(self):
        assert to_boolean(True) is True
        assert to_boolean(False) is False


class TestToNumber:
    def test_strings(self, doc):
        assert to_number("42", doc) == 42.0
        assert to_number("  -3.5 ", doc) == -3.5
        assert math.isnan(to_number("abc", doc))
        assert math.isnan(to_number("", doc))

    def test_booleans(self, doc):
        assert to_number(True, doc) == 1.0
        assert to_number(False, doc) == 0.0

    def test_nodeset_uses_first_node(self, doc):
        doc2 = parse_xml("<r><a>7</a><a>9</a></r>")
        nodes = [c for c in doc2.children(doc2.root)]
        assert to_number(nodes, doc2) == 7.0

    def test_empty_nodeset_is_nan(self, doc):
        assert math.isnan(to_number([], doc))


class TestToString:
    def test_nodeset_uses_first_in_document_order(self, doc):
        kids = doc.children(doc.root)
        assert to_string(list(reversed(kids)), doc) == "first"

    def test_empty_nodeset(self, doc):
        assert to_string([], doc) == ""

    def test_booleans(self, doc):
        assert to_string(True, doc) == "true"
        assert to_string(False, doc) == "false"


class TestNumberToString:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (1.0, "1"),
            (-1.0, "-1"),
            (0.0, "0"),
            (2.5, "2.5"),
            (-0.25, "-0.25"),
            (1e15, "1000000000000000"),
            (math.inf, "Infinity"),
            (-math.inf, "-Infinity"),
            (math.nan, "NaN"),
        ],
    )
    def test_formatting(self, value, expected):
        assert number_to_string(value) == expected


class TestNodeSetHelpers:
    def test_is_node_set(self, doc):
        assert is_node_set([doc.root])
        assert is_node_set([])
        assert not is_node_set("x")
        assert not is_node_set(1.0)
        assert not is_node_set(True)

    def test_sort_document_order_dedupes(self, doc):
        kids = doc.children(doc.root)
        messy = [kids[1], kids[0], kids[1], doc.root]
        assert sort_document_order(messy) == [doc.root, kids[0], kids[1]]
