"""User sessions: the paper's ``logged(s)`` made operational.

A :class:`Session` binds one logged-in user to a
:class:`~repro.security.database.SecureXMLDatabase`.  Everything the
user does flows through their view:

- queries (:meth:`Session.query` / :meth:`Session.select`) evaluate on
  the view document, with ``$USER`` bound to the login;
- updates (:meth:`Session.execute`) follow axioms 18-25: PATH selection
  on the view, privilege checks per operation, then mutation of the
  source; successful updates commit to the database and invalidate the
  cached view.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from dataclasses import dataclass

from ..xmltree.labels import NodeId
from ..xmltree.serializer import render_tree, serialize
from ..xpath.values import NodeSet, XPathValue
from ..xupdate.operations import UpdateScript, XUpdateOperation
from ..xupdate.parser import parse_xupdate
from .privileges import Privilege
from .view import View
from .write import SecureUpdateResult, SecureWriteExecutor

__all__ = ["ExplainEntry", "Session"]


@dataclass(frozen=True)
class ExplainEntry:
    """One line of :meth:`Session.explain` output.

    Attributes:
        node: the node the path selected (on the view).
        path_string: human-readable absolute path of the node.
        privilege: the privilege that was asked about.
        held: whether the session user holds it (axiom 14's verdict).
        rule: the deciding policy rule, or None under the closed-world
            default deny.
    """

    node: NodeId
    path_string: str
    privilege: "Privilege"
    held: bool
    rule: object = None

    def __str__(self) -> str:
        verdict = "GRANTED" if self.held else "DENIED "
        why = f"by {self.rule}" if self.rule is not None else "by default (no rule)"
        return f"{verdict} {self.privilege} on {self.path_string} {why}"


class Session:
    """One user's connection to a secure XML database.

    Obtained from :meth:`SecureXMLDatabase.login`; not constructed
    directly.
    """

    def __init__(
        self,
        database: "SecureXMLDatabase",  # noqa: F821
        user: str,
        enforcement: str = "materialized",
    ) -> None:
        if enforcement not in ("materialized", "lazy"):
            raise ValueError(
                "enforcement must be 'materialized' or 'lazy', "
                f"got {enforcement!r}"
            )
        self._database = database
        self._user = user
        self._enforcement = enforcement
        self._view = None
        self._view_version: int = -1

    @property
    def user(self) -> str:
        """The logged-in subject (the paper's ``logged(s)``)."""
        return self._user

    @property
    def database(self) -> "SecureXMLDatabase":  # noqa: F821
        return self._database

    @property
    def enforcement(self) -> str:
        """The enforcement strategy: ``materialized`` (axioms 15-17 as
        a pruned copy, the paper's presentation) or ``lazy`` (the same
        axioms checked per access -- the conclusion's filter approach)."""
        return self._enforcement

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def view(self) -> View:
        """The current authorized view (axioms 15-17), cached per
        database version.  A :class:`~repro.security.lazy.LazyView` in
        lazy mode; both expose the same surface."""
        version = self._database.version
        if self._view is None or self._view_version != version:
            if self._enforcement == "lazy":
                self._view = self._database.build_lazy_view(self._user)
            else:
                self._view = self._database.build_view(self._user)
            self._view_version = version
        return self._view

    def query(self, path: str) -> XPathValue:
        """Evaluate an XPath expression on the view.

        ``$USER`` is bound to the session login.  The result may be a
        node-set, string, number or boolean.
        """
        view = self.view()
        return self._database.engine.evaluate(
            view.doc, path, variables={"USER": self._user}
        )

    def select(self, path: str) -> NodeSet:
        """Evaluate a path on the view, requiring a node-set result."""
        view = self.view()
        return self._database.engine.select(
            view.doc, path, variables={"USER": self._user}
        )

    def read_xml(self, indent: Optional[str] = None) -> str:
        """The view serialized as XML (what this user may see)."""
        return serialize(self.view().doc, indent=indent)

    def read_tree(self) -> str:
        """The view in the paper's figure notation (one node per line)."""
        return render_tree(self.view().doc)

    def can(self, privilege: "str | Privilege", nid: NodeId) -> bool:
        """Does this user hold ``privilege`` on node ``nid``?

        Answered through the database's enforcement ladder: NFA
        membership over the node's label chain when every applicable
        rule for the privilege is automata-eligible (O(path length),
        no rule-path evaluation, no table, no view), the cached
        permission table otherwise.  A privilege probe never forces a
        view materialization either way.
        """
        return self._database.check(self._user, privilege, nid)

    def explain(
        self, privilege: "str | Privilege", path: str
    ) -> List["ExplainEntry"]:
        """Why does (or doesn't) this user hold a privilege on a path?

        For each node the path selects *on the view*, report whether
        the privilege is held and which policy rule decided it (None
        when no rule matched -- the closed-world default deny).

        Example::

            for entry in session.explain("read", "//diagnosis/*"):
                print(entry)
        """
        privilege = Privilege.parse(privilege)
        view = self.view()
        table = view.permissions
        out: List[ExplainEntry] = []
        for nid in self.select(path):
            out.append(
                ExplainEntry(
                    node=nid,
                    path_string=view.source.path_string(nid),
                    privilege=privilege,
                    held=table.holds(nid, privilege),
                    rule=table.explain(nid, privilege),
                )
            )
        return out

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def execute(
        self,
        operation: Union[XUpdateOperation, UpdateScript, str],
        strict: bool = False,
        checkpoint: Optional[Callable[[], None]] = None,
    ) -> SecureUpdateResult:
        """Apply an XUpdate operation, script, or XUpdate XML document.

        Selection happens on this session's view (axioms 18-25); the
        resulting document is committed to the database, so other
        sessions observe it on their next view refresh.

        The call is transactional: either the complete ``dbnew`` is
        committed (document swap + version bump, which invalidates every
        session's cached view and the permission caches), or -- on a
        strict-mode denial, an internal failure, or an injected fault --
        the database stays at the pre-script theory and every session's
        view is byte-identical to what it was before the call.

        Args:
            operation: an operation object, an :class:`UpdateScript`,
                or XUpdate XML text starting at
                ``<xupdate:modifications>``.
            strict: raise
                :class:`~repro.security.write.AccessDenied` if any
                selected node is refused (default: partial application
                with denials reported in the result).
            checkpoint: optional callable run before every operation
                of the script -- the serving layer's per-request
                deadline hook.  Raising
                :class:`~repro.errors.DeadlineExceeded` from it aborts
                the script via the savepoint path with nothing
                committed.

        Raises:
            AccessDenied: strict mode, any refused node; nothing is
                committed.
            UpdateAborted: a script operation failed; nothing is
                committed and the abort is in the audit log.
            DeadlineExceeded: the checkpoint expired mid-script;
                nothing is committed.
            ConcurrentUpdateError: another session committed while this
                script was executing; nothing is committed.
        """
        if isinstance(operation, str):
            operation = parse_xupdate(operation)
        executor: SecureWriteExecutor = self._database.write_executor
        from .database import CommitOrigin

        with self._database.transaction() as txn:
            result = executor.apply(
                self.view(), operation, strict=strict, checkpoint=checkpoint
            )
            txn.commit(
                result.document,
                result.changes,
                origin=CommitOrigin(
                    "update",
                    operation=operation,
                    user=self._user,
                    strict=strict,
                ),
            )
        return result
