"""Persistence: save and load a whole secure database as one XML file.

Not part of the paper's formal model, but required for the system to be
usable as a database: the document, the subject hierarchy (set S), and
the security policy (set P, priorities included) round-trip through a
single self-describing XML file::

    <securedb version="1">
      <subjects>
        <role name="staff"/>
        <role name="doctor"><isa>staff</isa></role>
        <user name="laporte"><isa>doctor</isa></user>
      </subjects>
      <policy>
        <rule effect="accept" privilege="read" subject="staff"
              priority="10" path="//*"/>
      </policy>
      <document>
        <patients>...</patients>
      </document>
    </securedb>

Node identifiers are regenerated on load -- they are internal and never
visible to users (paper section 4.4.1), so this is safe; anything that
must survive a reload (views, permissions) is re-derived from the
reloaded theory.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import os
import re
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .errors import DiskError, StorageCorrupt, StorageError, classify_disk_error
from .security.collection import SecureCollection
from .security.database import SecureXMLDatabase
from .security.delegation import AdministeredPolicy, Grant
from .security.policy import ACCEPT, Policy
from .security.subjects import SubjectHierarchy
from .xmltree.document import XMLDocument
from .xmltree.fragments import Fragment, element, fragment_from_subtree
from .xmltree.labels import NumberingScheme
from .xmltree.node import NodeKind
from .xmltree.parser import XMLSyntaxError, parse_fragment
from .xmltree.serializer import serialize
from .testing.diskfaults import disk
from .testing.faults import kill_point

__all__ = [
    "StorageError",
    "StorageCorrupt",
    "LoadProblem",
    "LoadReport",
    "dump_database",
    "dump_state",
    "snapshot_digest",
    "state_digest",
    "load_database",
    "save_to_file",
    "load_from_file",
    "backup_path",
    "dump_administration",
    "load_administration",
    "dump_collection",
    "load_collection",
]

_FORMAT_VERSION = "1"

logger = logging.getLogger("repro.storage")

#: Integrity header: a processing instruction carrying the SHA-256 of
#: the rest of the snapshot, written as the file's first line.  Old
#: files without it still load (the check is skipped).
_INTEGRITY_RE = re.compile(
    r'^<\?repro-integrity sha256="([0-9a-f]{64})"\?>\n'
)


@dataclass(frozen=True)
class LoadProblem:
    """One entry a lenient load had to drop or repair.

    Attributes:
        section: which part of the file (``subjects``, ``policy``,
            ``document`` or ``file``).
        detail: what was wrong and what was dropped.
    """

    section: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.section}] {self.detail}"


@dataclass
class LoadReport:
    """What a lenient load recovered and what it dropped.

    Attributes:
        source: file path (or ``"<string>"``) the data came from.
        problems: everything that was dropped or repaired, in file
            order; empty means the file loaded cleanly.
    """

    source: str = "<string>"
    problems: List[LoadProblem] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing was dropped."""
        return not self.problems

    def add(self, section: str, detail: str) -> None:
        """Record one dropped/repaired entry."""
        self.problems.append(LoadProblem(section, detail))

    def __str__(self) -> str:
        if self.clean:
            return f"{self.source}: loaded cleanly"
        lines = "\n".join(f"  {p}" for p in self.problems)
        return f"{self.source}: {len(self.problems)} problem(s) dropped\n{lines}"


# ---------------------------------------------------------------------------
# dumping
# ---------------------------------------------------------------------------
def dump_state(
    document: XMLDocument,
    subjects: SubjectHierarchy,
    policy: Policy,
) -> str:
    """Serialize a (document, subjects, policy) triple to ``<securedb>``
    XML text, without the integrity header.

    The components are taken separately so callers mid-commit (the
    write-ahead log, which must describe a *new* document against the
    current subjects and policy) need not assemble a throwaway
    :class:`SecureXMLDatabase` first.
    """
    doc_children: List[Fragment] = []
    if document.root is not None:
        doc_children.append(fragment_from_subtree(document, document.root))

    bundle = element(
        "securedb",
        _subjects_fragment(subjects),
        _policy_fragment(policy),
        element("document", *doc_children),
        attributes={"version": _FORMAT_VERSION},
    )
    carrier = XMLDocument()
    bundle.attach(carrier, carrier.document_node.nid)
    return serialize(carrier, indent="  ")


def state_digest(
    document: XMLDocument,
    subjects: SubjectHierarchy,
    policy: Policy,
) -> str:
    """The SHA-256 hex digest of a (document, subjects, policy) state.

    Exactly the digest :func:`dump_database` records in its integrity
    header, computed without keeping the serialized body around.  Two
    databases with equal digests serialize byte-identically -- the
    replication layer uses this to compare a replica's replayed state
    against the primary's checkpoint snapshots without shipping either
    state anywhere.
    """
    body = dump_state(document, subjects, policy)
    return hashlib.sha256(body.rstrip("\n").encode("utf-8")).hexdigest()


def dump_database(db: SecureXMLDatabase) -> str:
    """Serialize a database (document + subjects + policy) to XML text.

    The first line is an integrity header -- a processing instruction
    carrying the SHA-256 of the body -- which
    :func:`load_database` verifies: a strict load of a silently
    corrupted snapshot fails with :class:`StorageCorrupt` instead of
    loading garbage, and a lenient load reports the mismatch through
    the :class:`LoadReport`.  Files without the header (older dumps,
    hand-written fixtures) load with the check skipped.
    """
    body = dump_state(db.document, db.subjects, db.policy)
    digest = hashlib.sha256(body.rstrip("\n").encode("utf-8")).hexdigest()
    return f'<?repro-integrity sha256="{digest}"?>\n{body}'


def snapshot_digest(path: str) -> Optional[str]:
    """The digest recorded in a snapshot file's integrity header.

    Reads only the header line; returns None when the file has no
    integrity header (or cannot be read at all) -- callers treat that
    as "cannot verify", never as a mismatch.
    """
    try:
        with disk.open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
    except OSError:
        return None
    match = _INTEGRITY_RE.match(first)
    return match.group(1) if match else None


def _split_integrity(text: str) -> Tuple[Optional[str], str]:
    """Split off the integrity header: (recorded digest or None, body)."""
    match = _INTEGRITY_RE.match(text)
    if match is None:
        return None, text
    return match.group(1), text[match.end():]


def backup_path(path: str, index: int = 1) -> str:
    """The ``index``-th rolling-backup sibling a save leaves behind.

    Backup 1 (``path + '.bak'``) is the most recent pre-save content;
    higher indices (``path + '.bak2'``, ...) are progressively older
    generations kept when saving with ``backup_count > 1``.
    """
    if index < 1:
        raise ValueError("backup index starts at 1")
    return path + ".bak" if index == 1 else f"{path}.bak{index}"


def save_to_file(
    db: SecureXMLDatabase,
    path: str,
    backup: bool = True,
    backup_count: int = 1,
) -> None:
    """Write :func:`dump_database` output to a file, crash-safely.

    The payload goes to a temp file in the same directory, is fsynced,
    and is installed with an atomic rename -- at every instant ``path``
    holds either the complete previous database or the complete new one,
    never a torn write.  When ``backup`` is true and ``path`` already
    exists, its previous content survives as :func:`backup_path`;
    ``backup_count`` keeps that many rolling generations (``.bak``,
    ``.bak2``, ...), so a checkpoint rewriting the file repeatedly can
    never clobber the only good backup.

    Kill-points consulted (see :mod:`repro.testing.faults`):
    ``mid-write`` after roughly half the payload is written,
    ``before-rename`` once the temp file is durable.

    Raises:
        DiskFullError: the volume ran out of space mid-save; ``path``
            still holds the complete previous database.
        DiskIOError: the device failed the write or fsync; ``path``
            still holds the complete previous database.
    """
    payload = dump_database(db) + "\n"
    _write_atomically(payload, path, backup=backup, backup_count=backup_count)


def _write_atomically(
    payload: str, path: str, backup: bool, backup_count: int = 1
) -> None:
    if backup_count < 1:
        raise ValueError("backup_count must be >= 1")
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with disk.wrap(os.fdopen(fd, "w", encoding="utf-8"), temp_path) as handle:
            half = len(payload) // 2
            handle.write(payload[:half])
            handle.flush()
            kill_point("mid-write", path=path)
            handle.write(payload[half:])
            handle.flush()
            disk.fsync(handle)
        if backup and os.path.exists(path):
            _refresh_backup(path, backup_count)
        kill_point("before-rename", path=path)
        os.replace(temp_path, path)
        _fsync_directory(directory)
    except (DiskError, FileNotFoundError, IsADirectoryError, NotADirectoryError,
            PermissionError):
        with contextlib.suppress(OSError):
            os.unlink(temp_path)
        raise
    except OSError as exc:
        # A raw disk failure never escapes unclassified: the atomic
        # write guarantees path still holds the previous complete
        # database, and the classified error says whether reclaiming
        # space can help.
        with contextlib.suppress(OSError):
            os.unlink(temp_path)
        raise classify_disk_error(exc, path=path, op="save") from exc
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp_path)
        raise


def _refresh_backup(path: str, count: int = 1) -> None:
    """Rotate the ``.bak`` generations and point the newest at ``path``.

    With ``count`` N: ``.bak(N-1)`` moves to ``.bakN`` (dropping the
    previous ``.bakN``), and so on down, then ``.bak`` is re-pointed at
    the current on-disk content.
    """
    for index in range(count, 1, -1):
        older = backup_path(path, index - 1)
        if os.path.exists(older):
            os.replace(older, backup_path(path, index))
    bak = backup_path(path)
    with contextlib.suppress(FileNotFoundError):
        os.unlink(bak)
    try:
        os.link(path, bak)  # instant; rename then swaps path away
    except OSError:
        shutil.copy2(path, bak)  # filesystem without hard links


def _fsync_directory(directory: str) -> None:
    """Make the rename itself durable (best effort off POSIX).

    Some platforms and filesystems refuse to fsync a directory handle
    (``EINVAL`` on certain network/overlay mounts, no directory handles
    at all elsewhere); durability of the rename then rests on the OS,
    so the failure is *logged* -- never raised: a commit must not die
    on a filesystem that already did all it can.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError as exc:
        logger.warning(
            "cannot open directory %s for fsync (%s); the last rename "
            "is only as durable as the OS makes it", directory, exc
        )
        return
    try:
        os.fsync(dir_fd)
    except OSError as exc:
        logger.warning(
            "directory fsync failed for %s (%s); degrading to "
            "best-effort rename durability", directory, exc
        )
    finally:
        os.close(dir_fd)


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------
def _attr(fragment: Fragment, name: str, what: str) -> str:
    for key, value in fragment.attributes:
        if key == name:
            return value
    raise StorageError(f"<{fragment.label}> is missing the {name!r} attribute ({what})")


def _child_elements(fragment: Fragment) -> List[Fragment]:
    return [c for c in fragment.children if c.kind is NodeKind.ELEMENT]


def _find_section(root: Fragment, name: str) -> Fragment:
    for child in _child_elements(root):
        if child.label == name:
            return child
    raise StorageError(f"missing <{name}> section")


def _parse_root(text: str, expected_label: str, source: str) -> Fragment:
    """Parse the file-level XML; damage here is unrecoverable."""
    try:
        root = parse_fragment(text)
    except XMLSyntaxError as exc:
        raise StorageCorrupt(
            f"{source}: not well-formed XML ({exc}); "
            f"restore from the .bak sibling if one exists"
        ) from exc
    if root.label != expected_label:
        raise StorageCorrupt(
            f"{source}: expected <{expected_label}>, got <{root.label}>"
        )
    return root


def load_database(
    text: str,
    scheme: Optional[NumberingScheme] = None,
    mode: str = "strict",
    report: Optional[LoadReport] = None,
    source: str = "<string>",
) -> SecureXMLDatabase:
    """Rebuild a :class:`SecureXMLDatabase` from :func:`dump_database`
    output.

    Args:
        text: the file content.
        scheme: numbering scheme for the rebuilt document.
        mode: ``"strict"`` (default) raises on the first problem;
            ``"lenient"`` recovers everything readable from a partially
            corrupt ``<securedb>``, dropping broken subjects, rules or
            isa links and recording each drop in ``report``.
        report: a :class:`LoadReport` to fill in lenient mode (one is
            created -- and discarded -- if omitted).
        source: label used in error messages and the report (the file
            path, when loading from a file).

    Raises:
        StorageError: strict mode, for any structural problem (unknown
            version, missing sections, dangling subject references, bad
            priorities); messages carry ``source`` plus the offending
            element for context.
        StorageCorrupt: both modes, when the XML itself is not
            well-formed or the root element is wrong -- nothing can be
            recovered then.
    """
    if mode not in ("strict", "lenient"):
        raise ValueError(f"mode must be 'strict' or 'lenient', got {mode!r}")
    lenient = mode == "lenient"
    if report is None:
        report = LoadReport(source=source)
    else:
        report.source = source

    recorded, text = _split_integrity(text)
    if recorded is not None:
        actual = hashlib.sha256(
            text.rstrip("\n").encode("utf-8")
        ).hexdigest()
        if actual != recorded:
            if not lenient:
                raise StorageCorrupt(
                    f"{source}: integrity check failed (header sha256 "
                    f"{recorded[:12]}..., content {actual[:12]}...); the "
                    f"file was modified or damaged after it was written; "
                    f"restore from the .bak sibling if one exists"
                )
            report.add(
                "file",
                f"sha256 integrity mismatch (recorded {recorded[:12]}..., "
                f"actual {actual[:12]}...); loaded what was readable",
            )

    try:
        root = _parse_root(text, "securedb", source)
        version = _attr(root, "version", "format version")
        if version != _FORMAT_VERSION:
            if not lenient:
                raise StorageError(f"unsupported securedb version {version!r}")
            report.add("file", f"unsupported version {version!r}; loaded anyway")

        subjects = _load_subjects(
            _section(root, "subjects", lenient, report),
            report if lenient else None,
        )
        policy = _load_policy(
            _section(root, "policy", lenient, report),
            subjects,
            report if lenient else None,
        )

        document = XMLDocument(scheme)
        doc_section = _section(root, "document", lenient, report)
        roots = _child_elements(doc_section)
        if len(roots) > 1:
            if not lenient:
                raise StorageError(
                    "<document> may contain at most one root element"
                )
            report.add(
                "document",
                f"{len(roots)} root elements; kept the first "
                f"(<{roots[0].label}>), dropped the rest",
            )
            roots = roots[:1]
        if roots:
            roots[0].attach(document, document.document_node.nid)
    except StorageCorrupt:
        raise
    except StorageError as exc:
        raise type(exc)(f"{source}: {exc}") from exc

    return SecureXMLDatabase(document, subjects, policy)


def _section(
    root: Fragment, name: str, lenient: bool, report: LoadReport
) -> Fragment:
    """Find a required section; lenient mode substitutes an empty one."""
    try:
        return _find_section(root, name)
    except StorageError:
        if not lenient:
            raise
        report.add(name, f"missing <{name}> section; treated as empty")
        return element(name)


def load_from_file(
    path: str,
    scheme: Optional[NumberingScheme] = None,
    mode: str = "strict",
    report: Optional[LoadReport] = None,
) -> SecureXMLDatabase:
    """Read a database file written by :func:`save_to_file`.

    Args:
        path: the database file.
        scheme: numbering scheme for the rebuilt document.
        mode: ``"strict"`` (default) or ``"lenient"``; see
            :func:`load_database`.
        report: a :class:`LoadReport` filled with everything a lenient
            load dropped; pass one in to inspect the recovery.

    Raises:
        StorageError: strict mode, with the file path and offending
            element in the message.
        StorageCorrupt: unrecoverable damage (either mode); the message
            points at the ``.bak`` sibling when restoring is an option.
        DiskIOError: the device failed the read (``EIO``); a missing
            file still raises plain :class:`FileNotFoundError`.
    """
    try:
        with disk.open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except (DiskError, FileNotFoundError, IsADirectoryError,
            NotADirectoryError, PermissionError):
        raise
    except OSError as exc:
        raise classify_disk_error(exc, path=path, op="read") from exc
    return load_database(text, scheme, mode=mode, report=report, source=path)


# ---------------------------------------------------------------------------
# administration (delegation) state
# ---------------------------------------------------------------------------
def dump_administration(admin: AdministeredPolicy) -> str:
    """Serialize an :class:`AdministeredPolicy`'s grant history.

    The underlying policy is *not* included -- persist it with
    :func:`dump_database`; grants reference their rules by priority,
    which the policy format preserves.
    """
    grants = [
        element(
            "grant",
            attributes={
                "id": str(g.grant_id),
                "grantor": g.grantor,
                "priority": str(g.rule.priority),
                "option": "true" if g.grant_option else "false",
                "authority": str(g.authority) if g.authority else "",
            },
        )
        for g in admin.grants()
    ]
    bundle = element(
        "administration", *grants, attributes={"owner": admin.owner}
    )
    carrier = XMLDocument()
    bundle.attach(carrier, carrier.document_node.nid)
    return serialize(carrier, indent="  ")


def load_administration(
    text: str,
    subjects: SubjectHierarchy,
    policy: Policy,
) -> AdministeredPolicy:
    """Rebuild an :class:`AdministeredPolicy` over an existing policy.

    Args:
        text: output of :func:`dump_administration`.
        subjects: the (already loaded) subject hierarchy.
        policy: the (already loaded) policy whose rules the grants
            reference by priority.

    Raises:
        StorageError: malformed input, or a grant referencing a rule
            priority that is not in the policy.
    """
    root = parse_fragment(text)
    if root.label != "administration":
        raise StorageError(f"expected <administration>, got <{root.label}>")
    owner = _attr(root, "owner", "administration owner")
    admin = AdministeredPolicy(subjects, owner, policy)
    rules_by_priority = {rule.priority: rule for rule in policy}
    max_id = 0
    for entry in _child_elements(root):
        if entry.label != "grant":
            raise StorageError(f"unexpected <{entry.label}> in administration")
        grant_id = int(_attr(entry, "id", "grant id"))
        priority = int(_attr(entry, "priority", "grant rule priority"))
        rule = rules_by_priority.get(priority)
        if rule is None:
            raise StorageError(
                f"grant #{grant_id} references unknown rule priority {priority}"
            )
        authority_raw = _attr(entry, "authority", "grant authority")
        grant = Grant(
            grant_id=grant_id,
            grantor=_attr(entry, "grantor", "grantor"),
            rule=rule,
            grant_option=_attr(entry, "option", "grant option") == "true",
            authority=int(authority_raw) if authority_raw else None,
        )
        admin._grants[grant.grant_id] = grant
        max_id = max(max_id, grant_id)
    # Continue numbering after the highest persisted id.
    import itertools

    admin._ids = itertools.count(max_id + 1)
    return admin


# ---------------------------------------------------------------------------
# collections
# ---------------------------------------------------------------------------
def _subjects_fragment(subjects: SubjectHierarchy) -> Fragment:
    entries: List[Fragment] = []
    for name in sorted(subjects.roles) + sorted(subjects.users):
        isa = [
            element("isa", parent)
            for parent in sorted(subjects.direct_parents(name))
        ]
        tag = "role" if name in subjects.roles else "user"
        entries.append(element(tag, *isa, attributes={"name": name}))
    return element("subjects", *entries)


def _policy_fragment(policy: Policy) -> Fragment:
    rules = [
        element(
            "rule",
            attributes={
                "effect": effect,
                "privilege": privilege,
                "subject": subject,
                "priority": str(priority),
                "path": path,
            },
        )
        for effect, privilege, path, subject, priority in policy.facts()
    ]
    return element("policy", *rules)


def dump_collection(collection: SecureCollection) -> str:
    """Serialize a multi-document collection to XML text.

    Format: like :func:`dump_database` but with one named ``<document>``
    per collection member::

        <securecollection version="1">
          <subjects>...</subjects>
          <policy>...</policy>
          <document name="patients"><patients>...</patients></document>
          <document name="payroll"><payroll>...</payroll></document>
        </securecollection>
    """
    documents: List[Fragment] = []
    for name in collection.names():
        db = collection.database(name)
        content: List[Fragment] = []
        if db.document.root is not None:
            content.append(fragment_from_subtree(db.document, db.document.root))
        documents.append(
            element("document", *content, attributes={"name": name})
        )
    bundle = element(
        "securecollection",
        _subjects_fragment(collection.subjects),
        _policy_fragment(collection.policy),
        *documents,
        attributes={"version": _FORMAT_VERSION},
    )
    carrier = XMLDocument()
    bundle.attach(carrier, carrier.document_node.nid)
    return serialize(carrier, indent="  ")


def _load_subjects(
    section: Fragment, report: Optional[LoadReport] = None
) -> SubjectHierarchy:
    """Rebuild the subject hierarchy; ``report`` enables lenient drops."""
    subjects = SubjectHierarchy()
    pending: List[tuple] = []
    for entry in _child_elements(section):
        try:
            name = _attr(entry, "name", "subject name")
            if entry.label == "role":
                subjects.add_role(name)
            elif entry.label == "user":
                subjects.add_user(name)
            else:
                raise StorageError(f"unknown subject kind <{entry.label}>")
            for isa in _child_elements(entry):
                if isa.label != "isa":
                    raise StorageError(
                        f"unexpected <{isa.label}> in subject {name!r}"
                    )
                parent = "".join(
                    c.label for c in isa.children if c.kind is NodeKind.TEXT
                ).strip()
                if not parent:
                    raise StorageError(f"empty <isa> under subject {name!r}")
                pending.append((name, parent))
        except Exception as exc:
            if report is not None:
                report.add("subjects", f"dropped <{entry.label}>: {exc}")
                continue
            if isinstance(exc, StorageError):
                raise
            raise StorageError(
                f"bad <{entry.label}> entry in subjects: {exc}"
            ) from exc
    for child, parent in pending:
        try:
            subjects.add_isa(child, parent)
        except Exception as exc:
            if report is None:
                raise StorageError(
                    f"bad isa link {child!r} -> {parent!r}: {exc}"
                ) from exc
            report.add(
                "subjects", f"dropped isa({child!r}, {parent!r}): {exc}"
            )
    return subjects


def _load_policy(
    section: Fragment,
    subjects: SubjectHierarchy,
    report: Optional[LoadReport] = None,
) -> Policy:
    """Rebuild the policy; ``report`` enables lenient per-rule drops."""
    policy = Policy(subjects)
    ordered: List[tuple] = []
    for rule in _child_elements(section):
        try:
            if rule.label != "rule":
                raise StorageError(f"unexpected <{rule.label}> in policy")
            ordered.append((int(_attr(rule, "priority", "rule priority")), rule))
        except Exception as exc:
            if report is None:
                raise StorageError(
                    f"bad <{rule.label}> entry in policy: {exc}"
                ) from exc
            report.add("policy", f"dropped <{rule.label}>: {exc}")
    for priority, rule in sorted(ordered, key=lambda pair: pair[0]):
        try:
            effect = _attr(rule, "effect", "rule effect")
            privilege = _attr(rule, "privilege", "rule privilege")
            subject = _attr(rule, "subject", "rule subject")
            path = _attr(rule, "path", "rule path")
            if effect == ACCEPT:
                policy.grant(privilege, path, subject, priority=priority)
            elif effect == "deny":
                policy.deny(privilege, path, subject, priority=priority)
            else:
                raise StorageError(f"unknown rule effect {effect!r}")
        except Exception as exc:
            if report is not None:
                report.add(
                    "policy", f"dropped rule with priority {priority}: {exc}"
                )
                continue
            if isinstance(exc, StorageError):
                raise
            raise StorageError(
                f"bad rule with priority {priority}: {exc}"
            ) from exc
    return policy


def load_collection(text: str) -> SecureCollection:
    """Rebuild a :class:`SecureCollection` from :func:`dump_collection`.

    Raises:
        StorageError: for structural problems.
    """
    root = parse_fragment(text)
    if root.label != "securecollection":
        raise StorageError(f"expected <securecollection>, got <{root.label}>")
    if _attr(root, "version", "format version") != _FORMAT_VERSION:
        raise StorageError("unsupported securecollection version")
    subjects = _load_subjects(_find_section(root, "subjects"))
    policy = _load_policy(_find_section(root, "policy"), subjects)
    collection = SecureCollection(subjects, policy)
    for entry in _child_elements(root):
        if entry.label != "document":
            continue
        name = _attr(entry, "name", "document name")
        roots = _child_elements(entry)
        if len(roots) > 1:
            raise StorageError(
                f"document {name!r} may contain at most one root element"
            )
        document = XMLDocument()
        if roots:
            roots[0].attach(document, document.document_node.nid)
        collection.add_document(name, document)
    return collection
