"""A read-only replica continuously replaying a primary's log.

One :class:`Replica` owns a private :class:`SecureXMLDatabase` built
and maintained exclusively from a primary's write-ahead-log directory:

1. **Seeding / catch-up** run the existing recovery path
   (:func:`repro.wal.recover`, lenient and strictly read-only on the
   primary's files): newest loadable checkpoint plus the committed
   suffix.  The same path is the fallback whenever incremental
   following becomes impossible -- the stream position pruned away,
   the tail torn, the replica quarantined.
2. **Following** tails the segment files with a
   :class:`~repro.wal.WalStream` and applies each record through
   :func:`repro.wal.apply_record` -- the real secured update path, so
   enforcement is *preserved by construction*: the replica's permission
   state is re-derived from the same committed scripts, never copied.
3. **Serving** hands out read-only sessions from the replica's own
   shared view cache; the underlying database is marked
   :attr:`~repro.security.SecureXMLDatabase.read_only`, so any write
   that sneaks past the router raises
   :class:`~repro.errors.ReadOnlyReplica` instead of forking history.

The replica checks the recovery invariant on every applied commit
record (the stamped version must be the successor of its own), and
checks *state-hash convergence* on every streamed ``checkpoint``
record: its own :func:`~repro.storage.state_digest` must equal the
digest recorded in the primary's snapshot integrity header.  Any
mismatch quarantines the replica -- every read raises
:class:`~repro.errors.ReplicaDiverged` until :meth:`Replica.catch_up`
re-seeds it from a primary checkpoint.  A diverged replica never
serves a read.

Failover additions (ISSUE 9): the replica tracks the highest **fencing
epoch** seen in the stream and quarantines on any *lower*-epoch record
(a deposed primary's leftover -- counted as ``fenced_records``),
timestamps every successful poll/catch-up as its heartbeat
(``last_heartbeat_ms`` in :meth:`stats`), rebuilds the exactly-once
dedup ledger from ``idem``-annotated commit records (so a promoted
replica remembers every acknowledgement the old primary made durable),
and can be :meth:`retarget`-ed to a new primary's log directory after
a promotion.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ReplicaDiverged, WalStreamGap
from ..security.session import Session
from ..serving.dedup import DedupTable
from ..serving.rwlock import RWLock
from ..storage import snapshot_digest, state_digest
from ..testing.faults import InjectedFault, kill_point
from ..wal import WalStream, apply_record, recover, scan_directory
from ..xpath.values import NodeSet, XPathValue

__all__ = ["Replica"]


class Replica:
    """A continuously-replaying, read-only copy of a logged database.

    Args:
        directory: the primary's write-ahead-log directory (must hold
            at least one loadable checkpoint or a bootstrap state
            record; the primary's :meth:`DatabaseServer.open` cuts one
            on first open).
        replica_id: name used in stats and errors (defaults to the
            directory basename plus a counter).
        scheme: numbering scheme for replayed documents (storage
            default if omitted).
        dedup_capacity: entries in the rebuilt exactly-once ledger
            (see :class:`~repro.serving.dedup.DedupTable`).
        clock: monotonic time source, injectable for tests.

    Construction seeds the replica immediately (one full catch-up);
    afterwards :meth:`poll` / :meth:`sync` advance it.  All methods are
    thread-safe: applies take the exclusive side of an internal
    reader-writer lock, reads the shared side.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(
        self,
        directory: str,
        *,
        replica_id: Optional[str] = None,
        scheme=None,
        dedup_capacity: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._directory = os.path.abspath(directory)
        if replica_id is None:
            with Replica._counter_lock:
                Replica._counter += 1
                replica_id = (
                    f"{os.path.basename(self._directory)}"
                    f"#{Replica._counter}"
                )
        self._id = replica_id
        self._scheme = scheme
        self._clock = clock
        self._lock = RWLock()
        self._sessions: Dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._database = None
        self._stream: Optional[WalStream] = None
        self._applied_lsn = 0
        self._state = "seeding"
        self._quarantine_reason: Optional[str] = None
        self._epoch = 0
        self._last_beat = clock()
        self._dedup = DedupTable(dedup_capacity)
        self._stats: Dict[str, int] = {
            "records_applied": 0,  # streamed records replayed in place
            "catchups": 0,  # checkpoint re-seeds (seed + gap + re-seed)
            "stream_gaps": 0,  # WalStreamGap absorbed by catch-up
            "divergence_checks": 0,  # checkpoint digests compared, equal
            "divergence_check_skips": 0,  # snapshot pruned before compare
            "divergences": 0,  # times this replica was quarantined
            "reads": 0,  # read requests served
            "fenced_records": 0,  # stale-epoch records refused
            "retargets": 0,  # times re-pointed at a new primary's log
        }
        if not self._lock.acquire_write(None):  # pragma: no cover
            raise RuntimeError("replica lock unavailable at construction")
        try:
            self._catch_up_locked()
        finally:
            self._lock.release_write()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def replica_id(self) -> str:
        """Name used in stats and error messages."""
        return self._id

    @property
    def directory(self) -> str:
        """The primary's log directory being followed."""
        return self._directory

    @property
    def database(self):
        """The replica's own database (read-only; shared view cache)."""
        return self._database

    @property
    def version(self) -> int:
        """The replica's current database version."""
        return self._database.version

    @property
    def applied_lsn(self) -> int:
        """The last log record this replica has applied."""
        return self._applied_lsn

    @property
    def state(self) -> str:
        """``"following"`` or ``"quarantined"``."""
        return self._state

    @property
    def quarantined(self) -> bool:
        """True when divergence was detected; reads are refused."""
        return self._state == "quarantined"

    @property
    def epoch(self) -> int:
        """The highest fencing epoch this replica has observed."""
        return self._epoch

    @property
    def last_heartbeat_ms(self) -> float:
        """Milliseconds since the last successful poll or catch-up.

        The failure detector's per-replica liveness signal: a replica
        whose heartbeat age keeps growing is not making progress
        against its primary's log.
        """
        return max(0.0, (self._clock() - self._last_beat) * 1000.0)

    def dedup_entries(self):
        """Snapshot of the rebuilt exactly-once ledger, oldest first.

        Used at promotion to seed the new primary's dedup table so a
        client retrying an acknowledged write against the new primary
        still gets exactly-once semantics.
        """
        return self._dedup.entries()

    def lag(self, primary_lsn: Optional[int] = None) -> int:
        """Records between the primary's tail and this replica.

        Args:
            primary_lsn: the primary's last lsn when the caller already
                knows it (e.g. from ``WriteAheadLog.lsn``); omitted, the
                log directory is scanned for its last usable record.
        """
        if primary_lsn is None:
            primary_lsn = scan_directory(self._directory).last_lsn
        return max(0, primary_lsn - self._applied_lsn)

    def stats(self) -> Dict[str, Any]:
        """Replica health in one place: identity, state, applied lsn,
        version, the apply/catch-up/divergence counters, and the
        underlying database's serving counters."""
        out: Dict[str, Any] = {
            "replica_id": self._id,
            "state": self._state,
            "applied_lsn": self._applied_lsn,
            "quarantine_reason": self._quarantine_reason,
        }
        out.update(self._stats)
        out.update(self._database.stats())
        out["epoch"] = self._epoch
        out["last_heartbeat_ms"] = self.last_heartbeat_ms
        out["dedup_size"] = len(self._dedup)
        return out

    # ------------------------------------------------------------------
    # the replication protocol
    # ------------------------------------------------------------------
    def catch_up(self) -> int:
        """Re-seed from the newest checkpoint and replay the suffix.

        The fallback half of the protocol -- used when the replica is
        too far behind to follow incrementally (its stream position was
        pruned), when its tail view is torn, and to *re-seed a
        quarantined replica* (the only way back into service after
        divergence).  Strictly read-only on the primary's files.

        Returns:
            The lsn distance covered (0 when already caught up).

        Raises:
            RecoveryError: the directory holds nothing recoverable.
        """
        if not self._lock.acquire_write(None):  # pragma: no cover
            raise RuntimeError("replica lock unavailable")
        try:
            before = self._applied_lsn
            self._catch_up_locked()
            return max(0, self._applied_lsn - before)
        finally:
            self._lock.release_write()

    def _catch_up_locked(self) -> None:
        # recover() is lenient and repair=False: it never writes to the
        # primary's directory -- a torn live tail is simply where the
        # replay stops, and the stream picks up from there.
        result = recover(self._directory, scheme=self._scheme)
        database = result.database
        database.set_read_only(True)
        checkpoint_lsn = (
            result.checkpoint.lsn if result.checkpoint is not None else 0
        )
        self._database = database
        self._applied_lsn = max(result.last_lsn, checkpoint_lsn)
        self._stream = WalStream(self._directory, from_lsn=self._applied_lsn)
        self._state = "following"
        self._quarantine_reason = None
        self._epoch = max(self._epoch, result.epoch)
        self._dedup.seed(result.dedup.items())
        with self._sessions_lock:
            self._sessions.clear()
        self._stats["catchups"] += 1
        self._last_beat = self._clock()

    def poll(self, max_records: Optional[int] = None) -> int:
        """Pull and apply everything new the primary has made durable.

        One round of the following protocol: read the stream, apply
        each record through the secured replay path, advance the
        applied lsn.  A :class:`~repro.errors.WalStreamGap` (position
        pruned / history rewritten under the cursor) is absorbed by an
        automatic :meth:`catch_up`.

        Args:
            max_records: cap the records applied this call (None
                drains to the primary's current durable tail).

        Returns:
            The lsn distance covered by this call.

        Raises:
            ReplicaDiverged: the replica is (or just became)
                quarantined -- a stamped-version or checkpoint-digest
                mismatch; re-seed with :meth:`catch_up`.
            InjectedFault: an armed replication kill-point fired (the
                replica object itself stays consistent: records applied
                before the kill remain applied and acknowledged).
        """
        if not self._lock.acquire_write(None):  # pragma: no cover
            raise RuntimeError("replica lock unavailable")
        try:
            return self._poll_locked(max_records)
        finally:
            self._lock.release_write()

    def _poll_locked(self, max_records: Optional[int]) -> int:
        if self.quarantined:
            raise ReplicaDiverged(
                f"replica {self._id} is quarantined "
                f"({self._quarantine_reason}); catch_up() to re-seed"
            )
        before = self._applied_lsn
        try:
            records = self._stream.poll(max_records)
        except WalStreamGap:
            self._stats["stream_gaps"] += 1
            self._catch_up_locked()
            return max(0, self._applied_lsn - before)
        try:
            for record in records:
                kill_point(
                    "replica-before-apply", lsn=record.lsn, kind=record.kind
                )
                self._apply_one(record)
                self._applied_lsn = record.lsn
                self._stats["records_applied"] += 1
                kill_point("replica-mid-replay", lsn=record.lsn)
        except BaseException:
            # The stream cursor ran ahead of what was applied: rewind
            # to the acknowledged position so nothing in the batch is
            # lost across the failure (exactly-once apply on retry).
            self._stream = WalStream(
                self._directory, from_lsn=self._applied_lsn
            )
            raise
        self._last_beat = self._clock()
        return max(0, self._applied_lsn - before)

    def _apply_one(self, record) -> None:
        """Apply one streamed record, enforcing the two invariants."""
        database = self._database
        payload = record.payload
        epoch = record.epoch
        if epoch < self._epoch:
            # A deposed primary's leftover write: once a higher epoch
            # has been observed, lower-epoch records are *never*
            # applied -- the replica fences itself off instead of
            # forking history.
            self._stats["fenced_records"] += 1
            self._quarantine(
                f"lsn {record.lsn} carries stale epoch {epoch} after "
                f"epoch {self._epoch} was observed",
                expected=str(self._epoch),
                actual=str(epoch),
            )
        self._epoch = epoch
        if record.kind in ("update", "admin"):
            stamped = int(payload["version"])
            if stamped != database.version + 1:
                self._quarantine(
                    f"lsn {record.lsn} is stamped version {stamped}, but "
                    f"this replica stands at {database.version}",
                    expected=str(stamped),
                    actual=str(database.version + 1),
                )
        if record.kind == "checkpoint":
            self._verify_checkpoint(record)
            return
        database.set_read_only(False)
        try:
            replaced = apply_record(
                database, record, self._scheme, result_sink=self._remember
            )
        except InjectedFault:
            raise  # a simulated crash, not a divergence
        except Exception as exc:
            self._quarantine(
                f"replay of lsn {record.lsn} ({record.kind}) failed on the "
                f"replica: {exc}"
            )
        finally:
            database.set_read_only(True)
        if replaced is not database:
            replaced.set_read_only(True)
            self._database = replaced
            with self._sessions_lock:
                self._sessions.clear()
            database = replaced
        if record.kind in ("update", "admin", "state"):
            stamped = int(payload["version"])
            if database.version != stamped:
                self._quarantine(
                    f"replay of lsn {record.lsn} left this replica at "
                    f"version {database.version}, but the record is "
                    f"stamped {stamped}",
                    expected=str(stamped),
                    actual=str(database.version),
                )

    def _verify_checkpoint(self, record) -> None:
        """Divergence detection: this replica's state hash must equal
        the digest in the primary's snapshot integrity header."""
        database = self._database
        stamped = int(record.payload["version"])
        if database.version != stamped:
            self._quarantine(
                f"checkpoint at lsn {record.lsn} is stamped version "
                f"{stamped}, but this replica stands at {database.version}",
                expected=str(stamped),
                actual=str(database.version),
            )
        path = os.path.join(self._directory, record.payload["snapshot"])
        recorded = snapshot_digest(path)
        if recorded is None:
            # The snapshot was pruned (or has no header): nothing to
            # compare against -- skipped, never counted as divergence.
            self._stats["divergence_check_skips"] += 1
            return
        mine = state_digest(
            database.document, database.subjects, database.policy
        )
        if mine != recorded:
            self._quarantine(
                f"state hash diverged from primary checkpoint "
                f"{record.payload['snapshot']} at version {stamped}",
                expected=recorded,
                actual=mine,
            )
        self._stats["divergence_checks"] += 1

    def _remember(self, record, summary: Dict[str, Any]) -> None:
        """Capture an ``idem``-annotated commit into the dedup ledger."""
        key = record.payload.get("idem")
        if key is not None:
            self._dedup.put(str(key), summary)

    def retarget(self, directory: str) -> int:
        """Follow a different primary's log directory.

        Used after a supervised promotion: every surviving replica is
        re-pointed at the new primary's log.  Re-seeds immediately
        (full catch-up from the new directory's newest checkpoint),
        which also clears any quarantine -- the new primary's
        checkpoint is the fresh trusted baseline.

        Returns:
            The lsn distance covered by the re-seed (0 when the new
            log starts behind the old position).

        Raises:
            RecoveryError: the new directory holds nothing recoverable.
        """
        if not self._lock.acquire_write(None):  # pragma: no cover
            raise RuntimeError("replica lock unavailable")
        try:
            before = self._applied_lsn
            self._directory = os.path.abspath(directory)
            self._stats["retargets"] += 1
            self._catch_up_locked()
            return max(0, self._applied_lsn - before)
        finally:
            self._lock.release_write()

    def _quarantine(
        self, reason: str, expected: str = "", actual: str = ""
    ) -> None:
        self._state = "quarantined"
        self._quarantine_reason = reason
        self._stats["divergences"] += 1
        raise ReplicaDiverged(
            f"replica {self._id}: {reason}", expected=expected, actual=actual
        )

    def sync(self) -> int:
        """Drain the stream completely (repeated :meth:`poll`).

        Returns the total lsn distance covered.
        """
        total = 0
        while True:
            advanced = self.poll()
            if advanced == 0:
                return total
            total += advanced

    # ------------------------------------------------------------------
    # read-only serving
    # ------------------------------------------------------------------
    def serve(
        self, user: str, fn: Callable[[Session], Any]
    ) -> Tuple[Any, int]:
        """Run ``fn(session)`` under the read discipline.

        The building block the router and the convenience readers use:
        takes the shared lock (so applies never interleave a read),
        refuses to serve while quarantined, and returns ``(result,
        version)`` where the version is the exact database generation
        the result was derived from -- the stamp read-your-writes
        checks compare against.

        Raises:
            ReplicaDiverged: the replica is quarantined.
        """
        if not self._lock.acquire_read(None):  # pragma: no cover
            raise RuntimeError("replica lock unavailable")
        try:
            if self.quarantined:
                raise ReplicaDiverged(
                    f"replica {self._id} is quarantined "
                    f"({self._quarantine_reason}); diverged state is "
                    f"never served"
                )
            session = self._session(user)
            result = fn(session)
            version = self._database.version
        finally:
            self._lock.release_read()
        self._stats["reads"] += 1
        return result, version

    def _session(self, user: str) -> Session:
        with self._sessions_lock:
            session = self._sessions.get(user)
            if session is None:
                session = self._database.login(user)
                self._sessions[user] = session
            return session

    def view(self, user: str):
        """The user's authorized view on the replica's current state."""
        return self.serve(user, lambda s: s.view())[0]

    def query(self, user: str, path: str) -> XPathValue:
        """Evaluate an XPath expression on the user's view."""
        return self.serve(user, lambda s: s.query(path))[0]

    def select(self, user: str, path: str) -> NodeSet:
        """Evaluate a path on the user's view, requiring a node-set."""
        return self.serve(user, lambda s: s.select(path))[0]

    def read_xml(self, user: str, indent: Optional[str] = None) -> str:
        """The user's view serialized as XML."""
        return self.serve(user, lambda s: s.read_xml(indent=indent))[0]
