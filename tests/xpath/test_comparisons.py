"""XPath comparison and arithmetic semantics (spec sections 3.4-3.5)."""

import math

import pytest

from repro.xmltree import parse_xml
from repro.xpath import XPathEngine


@pytest.fixture
def doc():
    return parse_xml(
        "<r><v>1</v><v>2</v><v>3</v><w>2</w><w>9</w><empty/></r>"
    )


@pytest.fixture
def engine():
    return XPathEngine()


class TestEquality:
    def test_nodeset_vs_string_is_existential(self, engine, doc):
        assert engine.evaluate(doc, "//v = '2'") is True
        assert engine.evaluate(doc, "//v = '7'") is False

    def test_nodeset_vs_number(self, engine, doc):
        assert engine.evaluate(doc, "//v = 3") is True
        assert engine.evaluate(doc, "//v = 4") is False

    def test_nodeset_vs_nodeset(self, engine, doc):
        assert engine.evaluate(doc, "//v = //w") is True  # both contain "2"
        assert engine.evaluate(doc, "//v = //empty") is False

    def test_both_eq_and_neq_can_hold(self, engine, doc):
        """The classic XPath gotcha: existential on both sides."""
        assert engine.evaluate(doc, "//v = '2'") is True
        assert engine.evaluate(doc, "//v != '2'") is True

    def test_empty_nodeset_comparisons(self, engine, doc):
        assert engine.evaluate(doc, "//nope = '2'") is False
        assert engine.evaluate(doc, "//nope != '2'") is False

    def test_nodeset_vs_boolean(self, engine, doc):
        assert engine.evaluate(doc, "//v = true()") is True
        assert engine.evaluate(doc, "//nope = false()") is True
        assert engine.evaluate(doc, "//nope != true()") is True

    def test_scalar_equality_coercion(self, engine, doc):
        assert engine.evaluate(doc, "1 = '1'") is True
        assert engine.evaluate(doc, "true() = 1") is True
        assert engine.evaluate(doc, "true() = 'anything'") is True
        assert engine.evaluate(doc, "'a' = 'a'") is True
        assert engine.evaluate(doc, "'a' != 'b'") is True


class TestRelational:
    def test_numeric_comparison(self, engine, doc):
        assert engine.evaluate(doc, "2 < 3") is True
        assert engine.evaluate(doc, "3 <= 3") is True
        assert engine.evaluate(doc, "4 > 5") is False
        assert engine.evaluate(doc, "5 >= 5") is True

    def test_strings_compared_as_numbers(self, engine, doc):
        assert engine.evaluate(doc, "'10' > '9'") is True  # numeric!

    def test_nan_comparisons_false(self, engine, doc):
        assert engine.evaluate(doc, "'abc' < 1") is False
        assert engine.evaluate(doc, "'abc' >= 1") is False

    def test_nodeset_relational(self, engine, doc):
        assert engine.evaluate(doc, "//v > 2") is True
        assert engine.evaluate(doc, "//v > 3") is False
        assert engine.evaluate(doc, "2 < //v") is True
        assert engine.evaluate(doc, "//v < //w") is True


class TestArithmetic:
    def test_basic_ops(self, engine, doc):
        assert engine.evaluate(doc, "1 + 2") == 3.0
        assert engine.evaluate(doc, "5 - 2") == 3.0
        assert engine.evaluate(doc, "4 * 2.5") == 10.0
        assert engine.evaluate(doc, "7 div 2") == 3.5

    def test_mod_follows_dividend_sign(self, engine, doc):
        assert engine.evaluate(doc, "5 mod 2") == 1.0
        assert engine.evaluate(doc, "5 mod -2") == 1.0
        assert engine.evaluate(doc, "-5 mod 2") == -1.0
        assert engine.evaluate(doc, "-5 mod -2") == -1.0

    def test_division_by_zero(self, engine, doc):
        assert engine.evaluate(doc, "1 div 0") == math.inf
        assert engine.evaluate(doc, "-1 div 0") == -math.inf
        assert math.isnan(engine.evaluate(doc, "0 div 0"))

    def test_mod_zero_is_nan(self, engine, doc):
        assert math.isnan(engine.evaluate(doc, "5 mod 0"))

    def test_unary_minus(self, engine, doc):
        assert engine.evaluate(doc, "-(1 + 2)") == -3.0

    def test_nodeset_coerced_to_number(self, engine, doc):
        assert engine.evaluate(doc, "sum(//v) + 1") == 7.0
        assert engine.evaluate(doc, "//w + 1") == 3.0  # first node "2"


class TestBooleansOperators:
    def test_or_and(self, engine, doc):
        assert engine.evaluate(doc, "1 or 0") is True
        assert engine.evaluate(doc, "1 and 0") is False

    def test_short_circuit_or(self, engine, doc):
        # The right side would raise (unknown function) if evaluated.
        assert engine.evaluate(doc, "true() or frobnicate()") is True

    def test_short_circuit_and(self, engine, doc):
        assert engine.evaluate(doc, "false() and frobnicate()") is False
