"""Audit log of access-control decisions.

Not part of the paper's formal model, but any credible implementation
of it needs one: every grant/deny decision taken by the secure write
executor (and optionally by view derivation) is recorded with the rule
machinery's reason, so administrators can answer "why was this write
refused?" without re-deriving axioms by hand.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from ..xmltree.labels import NodeId
from .privileges import Privilege

__all__ = ["AuditRecord", "AuditLog"]


@dataclass(frozen=True)
class AuditRecord:
    """One access decision.

    Attributes:
        sequence: monotonically increasing record number.
        user: the session user.
        operation: operation class name (``Rename``, ``Remove``, ...) or
            ``"view"`` for view-derivation events.
        path: the PATH parameter of the operation.
        node: the node the decision was about.
        privilege: the privilege that was checked.
        allowed: the outcome.
        reason: denial reason; empty when allowed.
    """

    sequence: int
    user: str
    operation: str
    path: str
    node: NodeId
    privilege: Privilege
    allowed: bool
    reason: str = ""

    def __str__(self) -> str:
        verdict = "ALLOW" if self.allowed else "DENY "
        detail = f" -- {self.reason}" if self.reason else ""
        return (
            f"#{self.sequence} {verdict} {self.user} {self.operation}"
            f"({self.path}) {self.privilege} on {self.node!r}{detail}"
        )


class AuditLog:
    """An in-memory, append-only decision log."""

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []
        self._sequence = itertools.count(1)

    def record(
        self,
        user: str,
        operation: str,
        path: str,
        node: NodeId,
        privilege: Privilege,
        allowed: bool,
        reason: str = "",
    ) -> AuditRecord:
        """Append one decision and return the stored record."""
        entry = AuditRecord(
            sequence=next(self._sequence),
            user=user,
            operation=operation,
            path=path,
            node=node,
            privilege=privilege,
            allowed=allowed,
            reason=reason,
        )
        self._records.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def denials(self) -> List[AuditRecord]:
        """Only the refused decisions."""
        return [r for r in self._records if not r.allowed]

    def for_user(self, user: str) -> List[AuditRecord]:
        """All decisions concerning one user."""
        return [r for r in self._records if r.user == user]

    def clear(self) -> None:
        """Drop all records (testing convenience)."""
        self._records.clear()
