"""Compiling XPath location paths into Datalog rules.

The paper's ``xpath(p, n, v)`` predicate is axiomatized in its Prolog
prototype; here a :class:`PathCompiler` translates a location path into
a chain of Datalog rules over the geometry predicates of
:mod:`repro.formal.geometry`, one intermediate predicate per step.

The supported subset is the fragment the paper's policies actually use
(and the fragment our differential tests generate):

- absolute location paths;
- axes ``child``, ``descendant``, ``descendant-or-self``, ``self``,
  ``parent``;
- node tests: names, ``*`` (with the paper's text-matching semantics),
  ``text()``, ``node()``;
- predicates: a lone ``$USER`` (the paper's rule-5 shorthand for
  ``name() = $USER``), ``name() = 'literal'`` and ``name() = $USER``.

Anything richer raises :class:`UnsupportedPathError`; the *procedural*
engine (:mod:`repro.xpath`) of course supports full XPath 1.0 -- this
compiler only serves the formal cross-check.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..logic.program import Program
from ..logic.terms import Var, atom, pos
from ..xpath.ast import (
    BinaryOp,
    Expr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    Step,
    VariableRef,
)
from ..xpath.parser import parse_xpath

__all__ = ["PathCompiler", "UnsupportedPathError"]


class UnsupportedPathError(ValueError):
    """The path falls outside the compilable fragment."""


class PathCompiler:
    """Translates location paths into rules inside one program.

    Args:
        program: destination program (must already hold, or later hold,
            the geometry theory under the same ``prefix``).
        prefix: geometry predicate prefix -- ``""`` compiles against the
            source theory, ``"view_"`` against a view theory.
        star_matches_text: the paper's wildcard semantics (also used by
            the procedural security engine), on by default.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        program: Program,
        prefix: str = "",
        star_matches_text: bool = True,
    ) -> None:
        self._program = program
        self._prefix = prefix
        self._star_matches_text = star_matches_text

    def compile(self, path: str, user: Optional[str] = None) -> str:
        """Compile one path; returns the result predicate name (arity 1).

        Args:
            path: the XPath expression.
            user: binding for ``$USER`` inside the path, if referenced.

        Raises:
            UnsupportedPathError: outside the fragment, or an unbound
                ``$USER``.
        """
        expr = parse_xpath(path)
        if not isinstance(expr, LocationPath) or not expr.absolute:
            raise UnsupportedPathError(
                f"only absolute location paths are compilable: {path!r}"
            )
        pid = next(self._ids)
        # current(N) starts as "N is the document node".
        current = f"{self._prefix}xp{pid}_root"
        n = Var("N")
        self._program.rule(
            atom(current, n),
            pos(self._prefix + "node", n, "/"),
        )
        for index, step in enumerate(expr.steps):
            current = self._compile_step(step, current, f"xp{pid}_s{index}", user)
        return current

    # ------------------------------------------------------------------
    def _compile_step(
        self, step: Step, source: str, name: str, user: Optional[str]
    ) -> str:
        target = self._prefix + name
        n, p = Var("N"), Var("P")
        axis = step.axis
        if axis == "child":
            moves = [pos(self._prefix + "child", n, p)]
        elif axis == "descendant":
            moves = [pos(self._prefix + "descendant", n, p)]
        elif axis == "descendant-or-self":
            moves = [pos(self._prefix + "descendant_or_self", n, p)]
        elif axis == "self":
            moves = None  # alias handled below
        elif axis == "parent":
            moves = [pos(self._prefix + "child", p, n)]
        else:
            raise UnsupportedPathError(f"axis {axis!r} is not compilable")

        tests = self._test_conditions(step.test, n, user)
        preds = []
        for pr in step.predicates:
            preds.extend(self._predicate_condition(pr, n, user))
        for test_variant in tests:
            body = []
            if moves is None:
                body.append(pos(source, n))
            else:
                body.append(pos(source, p))
                body.extend(moves)
            body.extend(test_variant)
            body.extend(preds)
            self._program.rule(atom(target, n), *body)
        return target

    def _test_conditions(self, test, n: Var, user: Optional[str]):
        """One condition list per disjunct of the node test."""
        if isinstance(test, KindTest):
            if test.kind == "node":
                return [[]]
            if test.kind == "text":
                return [[pos(self._prefix + "text", n)]]
            raise UnsupportedPathError(f"kind test {test.kind!r} not compilable")
        assert isinstance(test, NameTest)
        if test.is_wildcard:
            variants = [[pos(self._prefix + "element", n)]]
            if self._star_matches_text:
                variants.append([pos(self._prefix + "text", n)])
            return variants
        v = Var("V_test")
        return [
            [
                pos(self._prefix + "element", n),
                pos(self._prefix + "node", n, test.name),
            ]
        ]

    def _predicate_condition(self, predicate: Expr, n: Var, user: Optional[str]):
        """Body literals for a supported predicate form.

        Name-based predicates only ever match elements (the procedural
        engine's lone-``$USER`` check tests the node kind too), so the
        ``element`` condition is conjoined explicitly.
        """
        if isinstance(predicate, VariableRef):
            # Paper rule-5 shorthand: [$USER] == [name() = $USER].
            return [
                pos(self._prefix + "element", n),
                pos(self._prefix + "node", n, self._resolve_user(predicate, user)),
            ]
        if (
            isinstance(predicate, BinaryOp)
            and predicate.op == "="
            and isinstance(predicate.left, FunctionCall)
            and predicate.left.name == "name"
            and not predicate.left.args
        ):
            right = predicate.right
            value = None
            if isinstance(right, Literal):
                value = right.value
            elif isinstance(right, VariableRef):
                value = self._resolve_user(right, user)
            if value is not None:
                return [
                    pos(self._prefix + "element", n),
                    pos(self._prefix + "node", n, value),
                ]
        raise UnsupportedPathError(f"predicate {predicate} is not compilable")

    @staticmethod
    def _resolve_user(ref: VariableRef, user: Optional[str]) -> str:
        if ref.name != "USER":
            raise UnsupportedPathError(f"unknown variable ${ref.name}")
        if user is None:
            raise UnsupportedPathError("$USER referenced but no user bound")
        return user
