"""Persistence of the administration (delegation) state."""

import pytest

from repro.security import Policy, SecureXMLDatabase, SubjectHierarchy
from repro.security.delegation import AdministeredPolicy, DelegationError
from repro.storage import (
    StorageError,
    dump_administration,
    dump_database,
    load_administration,
    load_database,
)


@pytest.fixture
def setup():
    subjects = SubjectHierarchy()
    subjects.add_user("owner")
    subjects.add_user("alice")
    subjects.add_user("bob")
    policy = Policy(subjects)
    admin = AdministeredPolicy(subjects, "owner", policy)
    db = SecureXMLDatabase.from_xml("<r><a>x</a></r>", subjects, policy)
    return db, admin


def roundtrip(db, admin):
    db2 = load_database(dump_database(db))
    admin2 = load_administration(
        dump_administration(admin), db2.subjects, db2.policy
    )
    return db2, admin2


class TestRoundTrip:
    def test_grants_survive_reload(self, setup):
        db, admin = setup
        admin.grant("owner", "read", "//node()", "alice", grant_option=True)
        admin.grant("alice", "read", "//node()", "bob")
        db2, admin2 = roundtrip(db, admin)
        assert admin2.owner == "owner"
        grants = admin2.grants()
        assert [g.grantor for g in grants] == ["owner", "alice"]
        assert grants[0].grant_option is True
        assert grants[1].authority == grants[0].grant_id

    def test_revocation_cascades_after_reload(self, setup):
        db, admin = setup
        root = admin.grant("owner", "read", "//node()", "alice", grant_option=True)
        admin.grant("alice", "read", "//node()", "bob")
        db2, admin2 = roundtrip(db, admin)
        removed = admin2.revoke("owner", root.grant_id)
        assert len(removed) == 2
        assert len(db2.policy) == 0
        # Access actually fell away.
        assert db2.login("bob").read_xml() == ""

    def test_new_grants_continue_numbering(self, setup):
        db, admin = setup
        first = admin.grant("owner", "read", "//node()", "alice")
        db2, admin2 = roundtrip(db, admin)
        fresh = admin2.grant("owner", "update", "//a", "alice")
        assert fresh.grant_id > first.grant_id

    def test_authority_enforced_after_reload(self, setup):
        db, admin = setup
        admin.grant("owner", "read", "//node()", "alice")  # no option
        _db2, admin2 = roundtrip(db, admin)
        with pytest.raises(DelegationError):
            admin2.grant("alice", "read", "//node()", "bob")

    def test_empty_administration(self, setup):
        db, admin = setup
        _db2, admin2 = roundtrip(db, admin)
        assert admin2.grants() == []


class TestErrors:
    def test_wrong_root(self, setup):
        db, _admin = setup
        db2 = load_database(dump_database(db))
        with pytest.raises(StorageError):
            load_administration("<nope/>", db2.subjects, db2.policy)

    def test_dangling_rule_priority(self, setup):
        db, _admin = setup
        db2 = load_database(dump_database(db))
        with pytest.raises(StorageError):
            load_administration(
                '<administration owner="owner">'
                '<grant id="1" grantor="owner" priority="99" '
                'option="false" authority=""/></administration>',
                db2.subjects,
                db2.policy,
            )
