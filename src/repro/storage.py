"""Persistence: save and load a whole secure database as one XML file.

Not part of the paper's formal model, but required for the system to be
usable as a database: the document, the subject hierarchy (set S), and
the security policy (set P, priorities included) round-trip through a
single self-describing XML file::

    <securedb version="1">
      <subjects>
        <role name="staff"/>
        <role name="doctor"><isa>staff</isa></role>
        <user name="laporte"><isa>doctor</isa></user>
      </subjects>
      <policy>
        <rule effect="accept" privilege="read" subject="staff"
              priority="10" path="//*"/>
      </policy>
      <document>
        <patients>...</patients>
      </document>
    </securedb>

Node identifiers are regenerated on load -- they are internal and never
visible to users (paper section 4.4.1), so this is safe; anything that
must survive a reload (views, permissions) is re-derived from the
reloaded theory.
"""

from __future__ import annotations

from typing import List, Optional

from .security.collection import SecureCollection
from .security.database import SecureXMLDatabase
from .security.delegation import AdministeredPolicy, Grant
from .security.policy import ACCEPT, Policy
from .security.subjects import SubjectHierarchy
from .xmltree.document import XMLDocument
from .xmltree.fragments import Fragment, element, fragment_from_subtree
from .xmltree.labels import NumberingScheme
from .xmltree.node import NodeKind
from .xmltree.parser import parse_fragment
from .xmltree.serializer import serialize

__all__ = [
    "StorageError",
    "dump_database",
    "load_database",
    "save_to_file",
    "load_from_file",
    "dump_administration",
    "load_administration",
    "dump_collection",
    "load_collection",
]

_FORMAT_VERSION = "1"


class StorageError(ValueError):
    """Malformed or unsupported database file."""


# ---------------------------------------------------------------------------
# dumping
# ---------------------------------------------------------------------------
def dump_database(db: SecureXMLDatabase) -> str:
    """Serialize a database (document + subjects + policy) to XML text."""
    subjects = db.subjects
    subject_fragments: List[Fragment] = []
    for name in sorted(subjects.roles) + sorted(subjects.users):
        isa = [
            element("isa", parent)
            for parent in sorted(subjects.direct_parents(name))
        ]
        tag = "role" if name in subjects.roles else "user"
        subject_fragments.append(element(tag, *isa, attributes={"name": name}))

    rule_fragments = [
        element(
            "rule",
            attributes={
                "effect": effect,
                "privilege": privilege,
                "subject": subject,
                "priority": str(priority),
                "path": path,
            },
        )
        for effect, privilege, path, subject, priority in db.policy.facts()
    ]

    doc_children: List[Fragment] = []
    root = db.document.root
    if root is not None:
        doc_children.append(fragment_from_subtree(db.document, root))

    bundle = element(
        "securedb",
        element("subjects", *subject_fragments),
        element("policy", *rule_fragments),
        element("document", *doc_children),
        attributes={"version": _FORMAT_VERSION},
    )
    carrier = XMLDocument()
    bundle.attach(carrier, carrier.document_node.nid)
    return serialize(carrier, indent="  ")


def save_to_file(db: SecureXMLDatabase, path: str) -> None:
    """Write :func:`dump_database` output to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_database(db))
        handle.write("\n")


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------
def _attr(fragment: Fragment, name: str, what: str) -> str:
    for key, value in fragment.attributes:
        if key == name:
            return value
    raise StorageError(f"<{fragment.label}> is missing the {name!r} attribute ({what})")


def _child_elements(fragment: Fragment) -> List[Fragment]:
    return [c for c in fragment.children if c.kind is NodeKind.ELEMENT]


def _find_section(root: Fragment, name: str) -> Fragment:
    for child in _child_elements(root):
        if child.label == name:
            return child
    raise StorageError(f"missing <{name}> section")


def load_database(
    text: str, scheme: Optional[NumberingScheme] = None
) -> SecureXMLDatabase:
    """Rebuild a :class:`SecureXMLDatabase` from :func:`dump_database`
    output.

    Raises:
        StorageError: for structural problems (unknown version, missing
            sections, dangling subject references, bad priorities).
    """
    root = parse_fragment(text)
    if root.label != "securedb":
        raise StorageError(f"expected <securedb>, got <{root.label}>")
    version = _attr(root, "version", "format version")
    if version != _FORMAT_VERSION:
        raise StorageError(f"unsupported securedb version {version!r}")

    subjects = SubjectHierarchy()
    pending_isa: List[tuple] = []
    for entry in _child_elements(_find_section(root, "subjects")):
        name = _attr(entry, "name", "subject name")
        if entry.label == "role":
            subjects.add_role(name)
        elif entry.label == "user":
            subjects.add_user(name)
        else:
            raise StorageError(f"unknown subject kind <{entry.label}>")
        for isa in _child_elements(entry):
            if isa.label != "isa":
                raise StorageError(f"unexpected <{isa.label}> in subject")
            parent = "".join(
                c.label for c in isa.children if c.kind is NodeKind.TEXT
            ).strip()
            if not parent:
                raise StorageError(f"empty <isa> under subject {name!r}")
            pending_isa.append((name, parent))
    for child, parent in pending_isa:
        subjects.add_isa(child, parent)

    policy = Policy(subjects)
    rules = _child_elements(_find_section(root, "policy"))
    for rule in sorted(rules, key=lambda r: int(_attr(r, "priority", "priority"))):
        if rule.label != "rule":
            raise StorageError(f"unexpected <{rule.label}> in policy")
        effect = _attr(rule, "effect", "rule effect")
        privilege = _attr(rule, "privilege", "rule privilege")
        subject = _attr(rule, "subject", "rule subject")
        priority = int(_attr(rule, "priority", "rule priority"))
        path = _attr(rule, "path", "rule path")
        if effect == ACCEPT:
            policy.grant(privilege, path, subject, priority=priority)
        elif effect == "deny":
            policy.deny(privilege, path, subject, priority=priority)
        else:
            raise StorageError(f"unknown rule effect {effect!r}")

    document = XMLDocument(scheme)
    doc_section = _find_section(root, "document")
    roots = _child_elements(doc_section)
    if len(roots) > 1:
        raise StorageError("<document> may contain at most one root element")
    if roots:
        roots[0].attach(document, document.document_node.nid)

    return SecureXMLDatabase(document, subjects, policy)


def load_from_file(
    path: str, scheme: Optional[NumberingScheme] = None
) -> SecureXMLDatabase:
    """Read a database file written by :func:`save_to_file`."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_database(handle.read(), scheme)


# ---------------------------------------------------------------------------
# administration (delegation) state
# ---------------------------------------------------------------------------
def dump_administration(admin: AdministeredPolicy) -> str:
    """Serialize an :class:`AdministeredPolicy`'s grant history.

    The underlying policy is *not* included -- persist it with
    :func:`dump_database`; grants reference their rules by priority,
    which the policy format preserves.
    """
    grants = [
        element(
            "grant",
            attributes={
                "id": str(g.grant_id),
                "grantor": g.grantor,
                "priority": str(g.rule.priority),
                "option": "true" if g.grant_option else "false",
                "authority": str(g.authority) if g.authority else "",
            },
        )
        for g in admin.grants()
    ]
    bundle = element(
        "administration", *grants, attributes={"owner": admin.owner}
    )
    carrier = XMLDocument()
    bundle.attach(carrier, carrier.document_node.nid)
    return serialize(carrier, indent="  ")


def load_administration(
    text: str,
    subjects: SubjectHierarchy,
    policy: Policy,
) -> AdministeredPolicy:
    """Rebuild an :class:`AdministeredPolicy` over an existing policy.

    Args:
        text: output of :func:`dump_administration`.
        subjects: the (already loaded) subject hierarchy.
        policy: the (already loaded) policy whose rules the grants
            reference by priority.

    Raises:
        StorageError: malformed input, or a grant referencing a rule
            priority that is not in the policy.
    """
    root = parse_fragment(text)
    if root.label != "administration":
        raise StorageError(f"expected <administration>, got <{root.label}>")
    owner = _attr(root, "owner", "administration owner")
    admin = AdministeredPolicy(subjects, owner, policy)
    rules_by_priority = {rule.priority: rule for rule in policy}
    max_id = 0
    for entry in _child_elements(root):
        if entry.label != "grant":
            raise StorageError(f"unexpected <{entry.label}> in administration")
        grant_id = int(_attr(entry, "id", "grant id"))
        priority = int(_attr(entry, "priority", "grant rule priority"))
        rule = rules_by_priority.get(priority)
        if rule is None:
            raise StorageError(
                f"grant #{grant_id} references unknown rule priority {priority}"
            )
        authority_raw = _attr(entry, "authority", "grant authority")
        grant = Grant(
            grant_id=grant_id,
            grantor=_attr(entry, "grantor", "grantor"),
            rule=rule,
            grant_option=_attr(entry, "option", "grant option") == "true",
            authority=int(authority_raw) if authority_raw else None,
        )
        admin._grants[grant.grant_id] = grant
        max_id = max(max_id, grant_id)
    # Continue numbering after the highest persisted id.
    import itertools

    admin._ids = itertools.count(max_id + 1)
    return admin


# ---------------------------------------------------------------------------
# collections
# ---------------------------------------------------------------------------
def _subjects_fragment(subjects: SubjectHierarchy) -> Fragment:
    entries: List[Fragment] = []
    for name in sorted(subjects.roles) + sorted(subjects.users):
        isa = [
            element("isa", parent)
            for parent in sorted(subjects.direct_parents(name))
        ]
        tag = "role" if name in subjects.roles else "user"
        entries.append(element(tag, *isa, attributes={"name": name}))
    return element("subjects", *entries)


def _policy_fragment(policy: Policy) -> Fragment:
    rules = [
        element(
            "rule",
            attributes={
                "effect": effect,
                "privilege": privilege,
                "subject": subject,
                "priority": str(priority),
                "path": path,
            },
        )
        for effect, privilege, path, subject, priority in policy.facts()
    ]
    return element("policy", *rules)


def dump_collection(collection: SecureCollection) -> str:
    """Serialize a multi-document collection to XML text.

    Format: like :func:`dump_database` but with one named ``<document>``
    per collection member::

        <securecollection version="1">
          <subjects>...</subjects>
          <policy>...</policy>
          <document name="patients"><patients>...</patients></document>
          <document name="payroll"><payroll>...</payroll></document>
        </securecollection>
    """
    documents: List[Fragment] = []
    for name in collection.names():
        db = collection.database(name)
        content: List[Fragment] = []
        if db.document.root is not None:
            content.append(fragment_from_subtree(db.document, db.document.root))
        documents.append(
            element("document", *content, attributes={"name": name})
        )
    bundle = element(
        "securecollection",
        _subjects_fragment(collection.subjects),
        _policy_fragment(collection.policy),
        *documents,
        attributes={"version": _FORMAT_VERSION},
    )
    carrier = XMLDocument()
    bundle.attach(carrier, carrier.document_node.nid)
    return serialize(carrier, indent="  ")


def _load_subjects(section: Fragment) -> SubjectHierarchy:
    subjects = SubjectHierarchy()
    pending: List[tuple] = []
    for entry in _child_elements(section):
        name = _attr(entry, "name", "subject name")
        if entry.label == "role":
            subjects.add_role(name)
        elif entry.label == "user":
            subjects.add_user(name)
        else:
            raise StorageError(f"unknown subject kind <{entry.label}>")
        for isa in _child_elements(entry):
            if isa.label != "isa":
                raise StorageError(f"unexpected <{isa.label}> in subject")
            parent = "".join(
                c.label for c in isa.children if c.kind is NodeKind.TEXT
            ).strip()
            if not parent:
                raise StorageError(f"empty <isa> under subject {name!r}")
            pending.append((name, parent))
    for child, parent in pending:
        subjects.add_isa(child, parent)
    return subjects


def _load_policy(section: Fragment, subjects: SubjectHierarchy) -> Policy:
    policy = Policy(subjects)
    rules = _child_elements(section)
    for rule in sorted(rules, key=lambda r: int(_attr(r, "priority", "priority"))):
        if rule.label != "rule":
            raise StorageError(f"unexpected <{rule.label}> in policy")
        effect = _attr(rule, "effect", "rule effect")
        privilege = _attr(rule, "privilege", "rule privilege")
        subject = _attr(rule, "subject", "rule subject")
        priority = int(_attr(rule, "priority", "rule priority"))
        path = _attr(rule, "path", "rule path")
        if effect == ACCEPT:
            policy.grant(privilege, path, subject, priority=priority)
        elif effect == "deny":
            policy.deny(privilege, path, subject, priority=priority)
        else:
            raise StorageError(f"unknown rule effect {effect!r}")
    return policy


def load_collection(text: str) -> SecureCollection:
    """Rebuild a :class:`SecureCollection` from :func:`dump_collection`.

    Raises:
        StorageError: for structural problems.
    """
    root = parse_fragment(text)
    if root.label != "securecollection":
        raise StorageError(f"expected <securecollection>, got <{root.label}>")
    if _attr(root, "version", "format version") != _FORMAT_VERSION:
        raise StorageError("unsupported securecollection version")
    subjects = _load_subjects(_find_section(root, "subjects"))
    policy = _load_policy(_find_section(root, "policy"), subjects)
    collection = SecureCollection(subjects, policy)
    for entry in _child_elements(root):
        if entry.label != "document":
            continue
        name = _attr(entry, "name", "document name")
        roots = _child_elements(entry)
        if len(roots) > 1:
            raise StorageError(
                f"document {name!r} may contain at most one root element"
            )
        document = XMLDocument()
        if roots:
            roots[0].attach(document, document.document_node.nid)
        collection.add_document(name, document)
    return collection
