"""Unit tests for the fault-injection harness itself."""

import pytest

from repro.testing.faults import (
    KILL_POINTS,
    FaultInjector,
    InjectedFault,
    faults,
    inject,
    kill_point,
)


class TestFaultInjector:
    def test_unarmed_reach_is_a_no_op(self):
        injector = FaultInjector()
        for point in KILL_POINTS:
            injector.reach(point)  # must not raise

    def test_armed_point_fires_once(self):
        injector = FaultInjector()
        injector.arm("before-op")
        with pytest.raises(InjectedFault):
            injector.reach("before-op")
        injector.reach("before-op")  # one-shot: disarmed after firing

    def test_countdown_lets_reaches_through(self):
        injector = FaultInjector()
        injector.arm("before-op", after=2)
        injector.reach("before-op")
        injector.reach("before-op")
        with pytest.raises(InjectedFault):
            injector.reach("before-op")

    def test_fault_carries_point_and_context(self):
        injector = FaultInjector()
        injector.arm("mid-write")
        with pytest.raises(InjectedFault) as info:
            injector.reach("mid-write", path="/tmp/db.xml")
        assert info.value.point == "mid-write"
        assert info.value.context == {"path": "/tmp/db.xml"}
        assert "mid-write" in str(info.value)

    def test_unknown_point_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm("after-rename")
        injector.arm("before-op")  # validation only runs on the armed path
        with pytest.raises(ValueError):
            injector.reach("nope")

    def test_negative_countdown_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("before-op", after=-1)

    def test_disarm_and_reset(self):
        injector = FaultInjector()
        injector.arm("before-op")
        injector.arm("mid-write")
        injector.disarm("before-op")
        assert not injector.is_armed("before-op")
        assert injector.is_armed("mid-write")
        injector.reset()
        assert not injector.is_armed("mid-write")

    def test_context_manager_disarms_on_exit(self):
        injector = FaultInjector()
        with injector.injected("before-rename"):
            assert injector.is_armed("before-rename")
        assert not injector.is_armed("before-rename")

    def test_trace_records_history(self):
        injector = FaultInjector()
        injector.trace = True
        injector.reach("before-op", index=0)
        injector.reach("after-op", index=0)
        assert [p for p, _ in injector.history] == ["before-op", "after-op"]


class TestModuleLevelInjector:
    def test_kill_point_uses_default_injector(self):
        with inject("before-op"):
            with pytest.raises(InjectedFault):
                kill_point("before-op", index=0)
        kill_point("before-op", index=0)  # disarmed again

    def test_default_injector_is_shared(self):
        faults.arm("after-op")
        try:
            assert faults.is_armed("after-op")
        finally:
            faults.disarm()
