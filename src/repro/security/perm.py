"""Conflict resolution: deriving ``perm(s, n, r)`` (paper axiom 14).

Axiom 14 reads: subject ``s`` definitely holds privilege ``r`` on node
``n`` iff some accept rule (for a subject s' with ``isa(s, s')``, whose
path addresses ``n``) has **no later deny rule** covering the same
subject/privilege/node.  With unique priorities this is exactly
"the latest matching rule wins; no matching rule means no privilege"
(closed-world assumption) -- which is how the resolver computes it: rules
are replayed in priority order and each one overwrites the effect on the
nodes its path selects.

The ``$USER`` variable in rule paths is bound to the login of the user
whose permissions are being derived, supporting the paper's
"patients may access their own medical file" rules 4-5.

Incremental maintenance
-----------------------

The seed re-derived every table from scratch after every commit: each
commit produces a fresh document object, so the per-document path cache
went cold and every rule path was re-evaluated over the whole tree for
every user -- O(users x rules x |doc|) per commit.  This resolver
instead *advances* its caches across commits when the committer
publishes a :class:`~repro.xupdate.changeset.ChangeSet`
(:meth:`PermissionResolver.note_commit`):

- a cached rule-path selection whose label skeleton is disjoint from
  the commit's touched labels is **carried** verbatim (the skeleton
  test of :mod:`repro.xpath.skeleton` proves it unchanged);
- a selection for a *patchable* path is **patched** locally: entries
  under removed roots are dropped and nodes inside touched regions are
  re-matched by their label chain -- no whole-document evaluation;
- anything else is dropped and lazily re-evaluated on next use
  (conservative fallback; correctness never depends on the delta).

Whole permission tables are shared across users through
:meth:`fingerprint`: any two users whose applicable rule lists are
identical and ``$USER``-free provably derive the same table, so the
common role-based policy resolves once per role, not once per user.
All decisions are counted in :attr:`PermissionResolver.stats`
(surfaced through ``SecureXMLDatabase.stats()``).
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..xmltree.document import XMLDocument
from ..xmltree.labels import NodeId, document_order_key
from ..xpath.compiler import CompiledXPath
from ..xpath.engine import XPathEngine
from ..xpath.skeleton import PathSkeleton, analyze_path
from .policy import ACCEPT, Policy, SecurityRule
from .privileges import Privilege

__all__ = ["PermissionTable", "PermissionResolver"]

logger = logging.getLogger("repro.security.perm")


@dataclass
class PermissionTable:
    """The derived ``perm`` facts for one user against one document.

    Attributes:
        user: the subject the table was derived for.
        granted: privilege -> set of node ids on which it is held.
        winning_rule: (privilege, node) -> the rule that decided the
            outcome (for audit and the policy-explanation API).
    """

    user: str
    granted: Dict[Privilege, Set[NodeId]] = field(default_factory=dict)
    winning_rule: Dict[Tuple[Privilege, NodeId], SecurityRule] = field(
        default_factory=dict
    )

    def holds(self, nid: NodeId, privilege: Privilege) -> bool:
        """The ``perm(user, nid, privilege)`` fact."""
        return nid in self.granted.get(privilege, ())

    def nodes_with(self, privilege: Privilege) -> FrozenSet[NodeId]:
        """All nodes on which the user holds ``privilege``."""
        return frozenset(self.granted.get(privilege, ()))

    def explain(self, nid: NodeId, privilege: Privilege) -> Optional[SecurityRule]:
        """The rule that decided this (privilege, node), if any matched."""
        return self.winning_rule.get((privilege, nid))

    def facts(self) -> Set[Tuple[str, NodeId, str]]:
        """The ``perm(s, n, r)`` facts as tuples, for the formal layer."""
        return {
            (self.user, nid, privilege.value)
            for privilege, nodes in self.granted.items()
            for nid in nodes
        }

    def for_user(self, user: str) -> "PermissionTable":
        """A per-user facade over this table's (shared, read-only) data.

        Two users with the same permission fingerprint hold identical
        ``perm`` facts; only the ``user`` field differs.  The facade
        shares the underlying dictionaries, so it costs O(1).
        """
        if user == self.user:
            return self
        return PermissionTable(
            user=user, granted=self.granted, winning_rule=self.winning_rule
        )

    def read_position_delta(self, other: "PermissionTable") -> Set[NodeId]:
        """Nodes whose read/position status differs between two tables.

        These are exactly the nodes whose *view* membership or label
        masking can change (axioms 15-17 consult only read/position),
        so the view cache re-prunes only these regions.
        """
        if other is self or (
            other.granted is self.granted and other.winning_rule is self.winning_rule
        ):
            return set()
        dirty: Set[NodeId] = set()
        for privilege in (Privilege.READ, Privilege.POSITION):
            mine = self.granted.get(privilege, set())
            theirs = other.granted.get(privilege, set())
            dirty |= mine ^ theirs
        return dirty


#: A permission fingerprint: the applicable rules (in priority order)
#: plus the user login when any applicable path references $USER.
Fingerprint = Tuple[Tuple[SecurityRule, ...], Optional[str]]


@dataclass
class _TableEntry:
    """One cached table, pinned to a document generation."""

    doc: XMLDocument
    stamp: int
    table: PermissionTable


class PermissionResolver:
    """Derives :class:`PermissionTable` objects from a policy.

    Args:
        engine: the XPath engine used to evaluate rule paths on the
            source document (axiom 14 evaluates ``xpath`` on the source
            theory ``db``).  The engine should have the paper-compat
            ``lone_variable_name_test`` enabled if policies use the
            paper's ``[$USER]`` shorthand.
        cache_paths: cache user-independent rule-path selections per
            (document, mutation stamp) and maintain them across commits
            (see :meth:`note_commit`).
        max_tables: bound on the shared-table cache (LRU-evicted); one
            entry per distinct permission fingerprint.
        compile_rules: evaluate rule paths through the engine's
            compiled closure pipelines
            (:meth:`~repro.xpath.engine.XPathEngine.compile_evaluator`)
            instead of re-interpreting the AST per evaluation.  The
            compiled evaluators are cached policy-wide here, so every
            consumer of the resolver (view building, write checks,
            XUpdate) hits the same warm cache.  Off only for the E23
            ablation.
    """

    def __init__(
        self,
        engine: Optional[XPathEngine] = None,
        cache_paths: bool = False,
        max_tables: int = 256,
        compile_rules: bool = True,
    ) -> None:
        self._engine = engine if engine is not None else XPathEngine(
            lone_variable_name_test=True, star_matches_text=True
        )
        # Cross-user cache: a rule path that never mentions $USER
        # selects the same nodes for every user, so re-evaluating it per
        # user is pure waste (ablation E18).  Keyed weakly by document
        # and guarded by the document's mutation stamp.
        self._cache_paths = cache_paths
        import weakref

        self._path_cache: "weakref.WeakKeyDictionary[XMLDocument, Tuple[int, Dict[str, Tuple[NodeId, ...]]]]" = (
            weakref.WeakKeyDictionary()
        )
        self._max_tables = max_tables
        self._tables: "OrderedDict[Fingerprint, _TableEntry]" = OrderedDict()
        self._skeletons: Dict[str, Optional[PathSkeleton]] = {}
        # Policy-wide compiled-rule cache: one CompiledXPath per rule
        # path string, shared by every resolve across all users and
        # documents (compiled evaluators are document-independent).
        self._compile_rules = compile_rules
        self._compiled_rules: Dict[str, CompiledXPath] = {}
        # Concurrent readers share these caches and commit maintenance
        # rewrites them; an RLock because resolve_cached -> resolve ->
        # _select_rule_path nests.
        self._lock = threading.RLock()
        #: Decision counters; read via ``SecureXMLDatabase.stats()``.
        self.stats: Dict[str, int] = {
            "path_evals": 0,  # engine.select calls on rule paths
            "path_cache_hits": 0,  # selections answered from cache
            "paths_carried": 0,  # selections carried across a commit
            "paths_patched": 0,  # selections patched locally
            "paths_dropped": 0,  # selections invalidated by a commit
            "table_cache_hits": 0,  # tables served from the fingerprint cache
            "tables_carried": 0,  # tables carried across a commit
            "delta_resolves": 0,  # re-resolves with a maintained path cache
            "full_resolves": 0,  # re-resolves with no carried state
            "conservative_commits": 0,  # commits without a usable change-set
            "degraded_rebuilds": 0,  # patches that raised; dropped, re-derived
            "rules_compiled": 0,  # distinct rule paths compiled to closures
            "static_decisions": 0,  # checks answered by the NFA decider
            "static_fallbacks": 0,  # checks that fell back to table lookup
        }

    @property
    def engine(self) -> XPathEngine:
        return self._engine

    @property
    def cache_paths(self) -> bool:
        return self._cache_paths

    # ------------------------------------------------------------------
    # fingerprints (cross-user sharing)
    # ------------------------------------------------------------------
    def fingerprint(self, policy: Policy, user: str) -> Fingerprint:
        """The permission fingerprint of ``user`` under ``policy``.

        Two (policy, user) pairs with equal fingerprints provably derive
        equal tables: the fingerprint is the exact rule sequence axiom
        14 replays, and the user login is included only when some
        applicable path binds ``$USER`` (otherwise the derivation never
        reads it).  Content-based, so policy mutations automatically
        change the fingerprint of affected users.
        """
        rules = policy.applicable_rules(user)
        user_dependent = any("$" in rule.path for rule in rules)
        return (rules, user if user_dependent else None)

    # ------------------------------------------------------------------
    # path selection (compiled + cached)
    # ------------------------------------------------------------------
    def _select_path(
        self, doc: XMLDocument, path: str, variables: Dict[str, str]
    ):
        """One rule-path evaluation, compiled unless ablated."""
        if not self._compile_rules:
            return self._engine.select(doc, path, variables=variables)
        compiled = self._compiled_rules.get(path)
        if compiled is None:
            compiled = self._engine.compile_evaluator(path)
            with self._lock:
                if path not in self._compiled_rules:
                    self._compiled_rules[path] = compiled
                    self.stats["rules_compiled"] += 1
        return compiled.select(doc, variables=variables)

    def _select_rule_path(
        self,
        doc: XMLDocument,
        path: str,
        variables: Dict[str, str],
    ):
        """Evaluate one rule path, caching user-independent paths."""
        if not self._cache_paths or "$" in path:
            self.stats["path_evals"] += 1
            return self._select_path(doc, path, variables)
        with self._lock:
            entry = self._path_cache.get(doc)
            if entry is None or entry[0] != doc.mutation_stamp:
                entry = (doc.mutation_stamp, {})
                self._path_cache[doc] = entry
            cached = entry[1].get(path)
            if cached is None:
                self.stats["path_evals"] += 1
                cached = tuple(self._select_path(doc, path, variables))
                entry[1][path] = cached
            else:
                self.stats["path_cache_hits"] += 1
            return cached

    def _skeleton(self, path: str) -> Optional[PathSkeleton]:
        """The (memoized) static skeleton of a rule path."""
        if path not in self._skeletons:
            self._skeletons[path] = analyze_path(path)
        return self._skeletons[path]

    def _path_stable(self, path: str, labels: Set[str]) -> bool:
        """True when a commit touching ``labels`` provably leaves the
        path's selection unchanged ($USER paths are never stable: they
        are cheap per-user evaluations, not shared state)."""
        if "$" in path:
            return False
        skeleton = self._skeleton(path)
        if skeleton is None:
            return False
        return not skeleton.may_intersect(labels)

    # ------------------------------------------------------------------
    # commit maintenance
    # ------------------------------------------------------------------
    def note_commit(self, old_doc, new_doc, changes=None) -> None:
        """Advance the caches across a commit ``old_doc -> new_doc``.

        Args:
            old_doc: the document generation being replaced.
            new_doc: the freshly installed generation.
            changes: the commit's
                :class:`~repro.xupdate.changeset.ChangeSet`, or None
                when the committer did not track one.  A missing or
                conservative change-set drops every cache bound to
                ``old_doc`` (the safe fallback).
        """
        with self._lock:
            self._note_commit_locked(old_doc, new_doc, changes)

    def _note_commit_locked(self, old_doc, new_doc, changes) -> None:
        entry = self._path_cache.pop(old_doc, None)
        if changes is None or changes.conservative:
            self.stats["conservative_commits"] += 1
            if entry is not None:
                self.stats["paths_dropped"] += len(entry[1])
            for fp in [
                fp for fp, te in self._tables.items() if te.doc is not new_doc
            ]:
                del self._tables[fp]
            return
        labels = changes.labels
        star_text = getattr(self._engine, "star_matches_text", False)
        if entry is not None and entry[0] == old_doc.mutation_stamp:
            carried: Dict[str, Tuple[NodeId, ...]] = {}
            for path, nodes in entry[1].items():
                if self._path_stable(path, labels):
                    carried[path] = nodes
                    self.stats["paths_carried"] += 1
                    continue
                skeleton = self._skeleton(path)
                if skeleton is not None and skeleton.patchable:
                    # A patch that raises must not leave a torn
                    # selection in the carried cache: drop the path
                    # (it re-evaluates lazily on next use) and count
                    # the degradation.
                    try:
                        carried[path] = _patch_selection(
                            nodes, new_doc, changes, skeleton, star_text
                        )
                        self.stats["paths_patched"] += 1
                    except Exception:
                        self.stats["paths_dropped"] += 1
                        self.stats["degraded_rebuilds"] += 1
                        logger.exception(
                            "selection patch failed for path %r; dropping "
                            "cached selection", path
                        )
                else:
                    self.stats["paths_dropped"] += 1
            self._path_cache[new_doc] = (new_doc.mutation_stamp, carried)
        stable_paths: Dict[str, bool] = {}
        for fp in list(self._tables):
            tentry = self._tables[fp]
            if tentry.doc is not old_doc or tentry.stamp != old_doc.mutation_stamp:
                if tentry.doc is not new_doc:
                    del self._tables[fp]  # stale generation: prune
                continue
            rules, _ = fp
            carriable = True
            for rule in rules:
                stable = stable_paths.get(rule.path)
                if stable is None:
                    stable = self._path_stable(rule.path, labels)
                    stable_paths[rule.path] = stable
                if not stable:
                    carriable = False
                    break
            if carriable:
                # No applicable path's selection changed, so axiom 14
                # replays to the identical table: carry it.
                self._tables[fp] = _TableEntry(
                    new_doc, new_doc.mutation_stamp, tentry.table
                )
                self.stats["tables_carried"] += 1
            else:
                del self._tables[fp]

    # ------------------------------------------------------------------
    # static decisions (no table, no view)
    # ------------------------------------------------------------------
    def holds_static(
        self,
        doc: XMLDocument,
        policy: Policy,
        user: str,
        nid: NodeId,
        privilege: Privilege,
    ) -> Optional[bool]:
        """Decide one ``perm`` fact by NFA membership, if eligible.

        Returns the decision when every applicable rule for this
        privilege is automata-eligible (see
        :mod:`repro.security.static`), or None when the caller must
        fall back to a resolved table.  Never materializes a view or
        evaluates a rule path over the document.
        """
        from .static import decider_for

        decider = decider_for(
            policy, user, getattr(self._engine, "star_matches_text", False)
        )
        outcome = decider.decide(doc, nid, privilege)
        if outcome is None:
            self.stats["static_fallbacks"] += 1
            return None
        self.stats["static_decisions"] += 1
        return outcome[0]

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(
        self,
        doc: XMLDocument,
        policy: Policy,
        user: str,
        privileges: Optional[Iterable[Privilege]] = None,
    ) -> PermissionTable:
        """Derive all ``perm(user, n, r)`` facts for one user.

        Args:
            doc: the source document (theory ``db``).
            policy: the security policy (set ``P``).
            user: the subject whose privileges are derived; ``$USER``
                binds to this login in rule paths.
            privileges: restrict derivation to these privileges
                (defaults to all five).

        Raises:
            repro.security.subjects.SubjectError: if ``user`` is not a
                declared subject.
        """
        table = PermissionTable(user=user)
        variables = {"USER": user}
        wanted = tuple(privileges) if privileges is not None else tuple(Privilege)
        effects: Dict[Privilege, Dict[NodeId, SecurityRule]] = {
            p: {} for p in wanted
        }
        for privilege in wanted:
            # Priority order: later rules overwrite earlier outcomes on
            # the nodes they address -- the operational form of "no
            # subsequent deny" in axiom 14.
            for rule in policy.rules_for(user, privilege):
                selected = self._select_rule_path(doc, rule.path, variables)
                outcome = effects[privilege]
                for nid in selected:
                    outcome[nid] = rule
        for privilege in wanted:
            granted: Set[NodeId] = set()
            for nid, rule in effects[privilege].items():
                table.winning_rule[(privilege, nid)] = rule
                if rule.effect == ACCEPT:
                    granted.add(nid)
            table.granted[privilege] = granted
        return table

    def resolve_cached(
        self, doc: XMLDocument, policy: Policy, user: str
    ) -> PermissionTable:
        """Like :meth:`resolve`, but shared across users and commits.

        The table is served from the fingerprint cache when the same
        (applicable rules, document generation) pair was already
        resolved -- for any user -- and recorded for carrying by
        :meth:`note_commit` otherwise.  The returned table's ``user``
        field always names the requesting user (a shared table is
        wrapped in a per-user facade).
        """
        with self._lock:
            fingerprint = self.fingerprint(policy, user)
            entry = self._tables.get(fingerprint)
            if (
                entry is not None
                and entry.doc is doc
                and entry.stamp == doc.mutation_stamp
            ):
                self.stats["table_cache_hits"] += 1
                self._tables.move_to_end(fingerprint)
                return entry.table.for_user(user)
            path_entry = self._path_cache.get(doc)
            maintained = (
                path_entry is not None and path_entry[0] == doc.mutation_stamp
            )
            table = self.resolve(doc, policy, user)
            self.stats["delta_resolves" if maintained else "full_resolves"] += 1
            self._tables[fingerprint] = _TableEntry(doc, doc.mutation_stamp, table)
            self._tables.move_to_end(fingerprint)
            while len(self._tables) > self._max_tables:
                self._tables.popitem(last=False)
            return table


def _patch_selection(
    nodes: Tuple[NodeId, ...],
    new_doc: XMLDocument,
    changes,
    skeleton: PathSkeleton,
    star_matches_text: bool,
) -> Tuple[NodeId, ...]:
    """Maintain one patchable path selection across a commit.

    Entries inside removed/touched regions are dropped, then every node
    inside touched regions is re-matched by its label chain (the
    :meth:`PathSkeleton.matches` NFA) -- cost proportional to the
    updated regions, never the document.
    """
    touched = changes.added | changes.relabelled | changes.removed
    surviving = [
        nid
        for nid in nodes
        if nid in new_doc
        and not any(
            root == nid or root.is_ancestor_of(nid) for root in touched
        )
    ]
    candidates: Set[NodeId] = set()
    for root in changes.added | changes.relabelled:
        if root in new_doc:
            candidates.update(new_doc.subtree(root))
    for nid in changes.revalued:
        if nid in new_doc:
            candidates.add(nid)
    matched = [
        nid
        for nid in candidates
        if skeleton.matches(new_doc, nid, star_matches_text)
    ]
    return tuple(
        sorted(set(surviving) | set(matched), key=document_order_key)
    )
