"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.xmltree import NodeKind, XMLSyntaxError, parse_fragment, parse_xml


class TestBasicParsing:
    def test_single_empty_element(self):
        doc = parse_xml("<a/>")
        assert doc.label(doc.root) == "a"
        assert doc.children(doc.root) == []

    def test_open_close_pair(self):
        doc = parse_xml("<a></a>")
        assert doc.label(doc.root) == "a"

    def test_nested_elements(self):
        doc = parse_xml("<a><b><c/></b></a>")
        b = doc.children(doc.root)[0]
        c = doc.children(b)[0]
        assert doc.label(c) == "c"

    def test_text_content(self):
        doc = parse_xml("<a>hello</a>")
        t = doc.children(doc.root)[0]
        assert doc.kind(t) is NodeKind.TEXT
        assert doc.label(t) == "hello"

    def test_whitespace_only_text_dropped(self):
        doc = parse_xml("<a>\n  <b/>\n  <c/>\n</a>")
        labels = [doc.label(k) for k in doc.children(doc.root)]
        assert labels == ["b", "c"]

    def test_mixed_content_keeps_text(self):
        doc = parse_xml("<a>pre<b/>post</a>")
        kinds = [doc.kind(k) for k in doc.children(doc.root)]
        assert kinds == [NodeKind.TEXT, NodeKind.ELEMENT, NodeKind.TEXT]

    def test_attributes(self):
        doc = parse_xml('<a id="1" lang=\'fr\'/>')
        assert doc.attribute_value(doc.root, "id") == "1"
        assert doc.attribute_value(doc.root, "lang") == "fr"

    def test_xml_declaration_and_doctype_skipped(self):
        doc = parse_xml('<?xml version="1.0"?><!DOCTYPE a []><a/>')
        assert doc.label(doc.root) == "a"

    def test_comments_skipped(self):
        doc = parse_xml("<a><!-- hidden --><b/></a>")
        assert [doc.label(k) for k in doc.children(doc.root)] == ["b"]

    def test_processing_instruction_skipped(self):
        doc = parse_xml("<a><?php echo ?><b/></a>")
        assert [doc.label(k) for k in doc.children(doc.root)] == ["b"]

    def test_cdata_preserved_verbatim(self):
        doc = parse_xml("<a><![CDATA[<not> & parsed]]></a>")
        t = doc.children(doc.root)[0]
        assert doc.label(t) == "<not> & parsed"

    def test_names_with_namespace_prefix(self):
        doc = parse_xml("<xu:mods><xu:item/></xu:mods>")
        assert doc.label(doc.root) == "xu:mods"


class TestEntities:
    def test_standard_entities(self):
        doc = parse_xml("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.label(doc.children(doc.root)[0]) == "<>&'\""

    def test_numeric_references(self):
        doc = parse_xml("<a>&#65;&#x42;</a>")
        assert doc.label(doc.children(doc.root)[0]) == "AB"

    def test_entities_in_attributes(self):
        doc = parse_xml('<a title="a&amp;b"/>')
        assert doc.attribute_value(doc.root, "title") == "a&b"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_xml("<a>&nope;</a>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_xml("<a>&amp</a>")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a attr></a>",
            "<a attr=unquoted/>",
            '<a attr="unterminated/>',
            "<a><!-- unterminated</a>",
            "<a><![CDATA[unterminated</a>",
            "plain text",
            "< a/>",
        ],
    )
    def test_malformed_inputs_rejected(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse_xml(bad)

    def test_error_carries_position(self):
        try:
            parse_xml("<a></b>")
        except XMLSyntaxError as exc:
            assert exc.position >= 0
        else:  # pragma: no cover
            pytest.fail("expected XMLSyntaxError")


class TestFragmentParsing:
    def test_fragment_is_detached(self):
        frag = parse_fragment("<a><b>t</b></a>")
        assert frag.label == "a"
        assert frag.children[0].label == "b"
        assert frag.children[0].children[0].kind is NodeKind.TEXT

    def test_fragment_size(self):
        frag = parse_fragment('<a id="1"><b/>t</a>')
        assert frag.size() == 4  # a, @id, b, text
