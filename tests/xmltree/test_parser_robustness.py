"""Robustness: the parsers fail *controlledly* on arbitrary input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree import XMLSyntaxError, parse_xml, serialize
from repro.xpath import XPathSyntaxError, parse_xpath
from repro.xpath.evaluator import XPathEvaluationError


@given(st.text(max_size=200))
@settings(max_examples=200, deadline=None)
def test_xml_parser_never_crashes(junk):
    """Arbitrary text either parses or raises XMLSyntaxError -- never
    an uncontrolled exception type."""
    try:
        doc = parse_xml(junk)
    except XMLSyntaxError:
        return
    except (ValueError, OverflowError):
        # Character references can overflow chr(); they arrive as
        # ValueError subclasses, which is acceptable controlled failure.
        return
    # If it parsed, it must serialize and re-parse.
    again = parse_xml(serialize(doc))
    assert serialize(again) == serialize(doc)


@given(
    st.text(
        alphabet="abc/*[]()@.|$='\" <>!-0123456789:deiuvnot",
        max_size=40,
    )
)
@settings(max_examples=300, deadline=None)
def test_xpath_parser_never_crashes(junk):
    """Arbitrary expression text either parses or raises
    XPathSyntaxError."""
    try:
        parse_xpath(junk)
    except XPathSyntaxError:
        pass


@given(
    st.sampled_from(
        [
            "//a",
            "count(//a)",
            "//a[1] | //b",
            "string(//a) = 'x'",
            "sum(//a) + 1",
            "//a/ancestor::*[last()]",
            "normalize-space(//a)",
        ]
    )
)
@settings(max_examples=50, deadline=None)
def test_valid_expressions_evaluate_without_surprise(expr):
    """Well-formed expressions evaluate on a fixed doc with no error,
    or only the documented evaluation error type."""
    doc = parse_xml("<r><a>1</a><b>2</b></r>")
    from repro.xpath import XPathEngine

    try:
        XPathEngine().evaluate(doc, expr)
    except XPathEvaluationError:
        pass
