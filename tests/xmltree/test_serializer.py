"""Serializer tests, including parse/serialize round-trip properties."""

import pytest
from hypothesis import given, settings

from repro.xmltree import (
    NodeKind,
    XMLDocument,
    parse_xml,
    render_tree,
    serialize,
)

from tests.strategies import documents


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(parse_xml("<a/>")) == "<a/>"

    def test_text_content_inline(self):
        assert serialize(parse_xml("<a>hi</a>")) == "<a>hi</a>"

    def test_nested(self):
        xml = "<a><b>x</b><c/></a>"
        assert serialize(parse_xml(xml)) == xml

    def test_attributes_serialized(self):
        out = serialize(parse_xml('<a id="1" b="two"/>'))
        assert out == '<a id="1" b="two"/>'

    def test_special_characters_escaped(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        doc.append_child(root, NodeKind.TEXT, "a<b>&c")
        out = serialize(doc)
        assert out == "<a>a&lt;b&gt;&amp;c</a>"
        # and it parses back to the same text
        again = parse_xml(out)
        assert again.label(again.children(again.root)[0]) == "a<b>&c"

    def test_attribute_quotes_escaped(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        doc.set_attribute(root, "t", 'say "hi" & <go>')
        out = serialize(doc)
        again = parse_xml(out)
        assert again.attribute_value(again.root, "t") == 'say "hi" & <go>'

    def test_indented_output_has_newlines(self):
        out = serialize(parse_xml("<a><b><c/></b></a>"), indent="  ")
        lines = out.split("\n")
        assert lines[0] == "<a>"
        assert lines[1] == "  <b>"
        assert lines[2] == "    <c/>"

    def test_subtree_serialization(self):
        doc = parse_xml("<a><b>x</b><c/></a>")
        b = doc.children(doc.root)[0]
        assert serialize(doc, nid=b) == "<b>x</b>"

    @given(documents())
    @settings(max_examples=50)
    def test_roundtrip_is_idempotent(self, doc):
        """serialize(parse(serialize(d))) == serialize(d).

        Adjacent text children legitimately merge on the first
        round-trip (XML has no way to express the boundary), so the
        property is idempotence of the serialized form, not node-level
        isomorphism.
        """
        once = serialize(doc)
        twice = serialize(parse_xml(once))
        assert once == twice

    @given(documents())
    @settings(max_examples=50)
    def test_roundtrip_preserves_string_value(self, doc):
        """The document's text content survives the round-trip intact."""
        again = parse_xml(serialize(doc))
        from repro.xmltree import DOCUMENT_ID

        assert doc.string_value(DOCUMENT_ID) == again.string_value(DOCUMENT_ID)


class TestRenderTree:
    def test_paper_figure_notation(self):
        doc = parse_xml("<patients><franck><service>oto</service></franck></patients>")
        out = render_tree(doc)
        assert out.split("\n") == [
            "/",
            "  /patients",
            "    /franck",
            "      /service",
            "        text()oto",
        ]

    def test_attributes_rendered(self):
        doc = parse_xml('<a id="1"/>')
        assert "@id=1" in render_tree(doc)


class TestCommentsAndPIs:
    def test_comment_serialization(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        doc.append_child(root, NodeKind.COMMENT, " note ")
        assert serialize(doc) == "<a><!-- note --></a>"

    def test_processing_instruction_serialization(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        doc.append_child(
            root, NodeKind.PROCESSING_INSTRUCTION, "php", "echo 1;"
        )
        assert serialize(doc) == "<a><?php echo 1;?></a>"

    def test_comment_in_indented_output(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        doc.append_child(root, NodeKind.ELEMENT, "b")
        doc.append_child(root, NodeKind.COMMENT, "x")
        out = serialize(doc, indent="  ")
        assert "<!--x-->" in out

    def test_comment_rendered_in_tree_notation(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        doc.append_child(root, NodeKind.COMMENT, "x")
        # render_tree treats comments as generic labelled nodes.
        assert "x" in render_tree(doc)
