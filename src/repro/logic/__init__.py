"""A Datalog engine with stratified negation.

The formal substrate standing in for the paper's Prolog prototype: all
of the paper's formulae are Horn clauses, which :mod:`repro.formal`
transcribes into programs this engine evaluates bottom-up.
"""

from .engine import DatalogEngine, Relation
from .program import Program, StratificationError
from .terms import (
    Atom,
    BodyItem,
    Comparison,
    Literal,
    Rule,
    Substitution,
    Term,
    Var,
    atom,
    cmp,
    neg,
    pos,
)

__all__ = [
    "Atom",
    "BodyItem",
    "Comparison",
    "DatalogEngine",
    "Literal",
    "Program",
    "Relation",
    "Rule",
    "StratificationError",
    "Substitution",
    "Term",
    "Var",
    "atom",
    "cmp",
    "neg",
    "pos",
]
