"""Policy consistency linter: dead, empty-path and audience-less rules."""

import pytest

from repro.core import hospital_database
from repro.security import (
    Policy,
    PolicyLintWarning,
    SecureXMLDatabase,
    SubjectHierarchy,
)


def make_db(xml="<r><a/><b/></r>"):
    subjects = SubjectHierarchy()
    subjects.add_role("staff")
    subjects.add_role("doctor", member_of="staff")
    subjects.add_user("u", member_of="doctor")
    return SecureXMLDatabase.from_xml(xml, subjects, Policy(subjects))


class TestDeadRules:
    def test_rule_fully_shadowed_by_later_rule_is_dead(self):
        db = make_db()
        early = db.policy.grant("read", "//a", "staff")
        db.policy.deny("read", "//*", "staff")  # re-decides every node
        warnings = db.policy.lint(document=db.document, engine=db.engine)
        assert [w.rule for w in warnings if w.kind == "dead"] == [early]

    def test_shadow_must_cover_every_node(self):
        db = make_db()
        db.policy.grant("read", "//*", "staff")
        db.policy.deny("read", "//a", "staff")  # narrows, does not shadow
        assert db.policy.lint(document=db.document, engine=db.engine) == []

    def test_shadow_only_counts_for_same_privilege(self):
        db = make_db()
        db.policy.grant("read", "//a", "staff")
        db.policy.deny("update", "//*", "staff")
        assert db.policy.lint(document=db.document, engine=db.engine) == []

    def test_role_shadowed_by_broader_subject(self):
        # A doctor-rule followed by a staff-rule on the same nodes is
        # dead: every doctor is staff, so the later rule always wins.
        db = make_db()
        early = db.policy.grant("read", "//a", "doctor")
        db.policy.deny("read", "//a", "staff")
        warnings = db.policy.lint(document=db.document, engine=db.engine)
        assert [w.rule for w in warnings] == [early]

    def test_narrow_subject_does_not_shadow_broader_one(self):
        # staff-rule then doctor-rule: for a hypothetical staff-only
        # user the first rule would still win; but with u (a doctor)
        # as the only user, the doctor rule re-decides everything.
        db = make_db()
        early = db.policy.grant("read", "//a", "staff")
        db.policy.deny("read", "//a", "doctor")
        warnings = db.policy.lint(document=db.document, engine=db.engine)
        assert [w.rule for w in warnings] == [early]


class TestOtherKinds:
    def test_empty_path_rule_flagged(self):
        db = make_db()
        rule = db.policy.grant("read", "//zzz", "staff")
        warnings = db.policy.lint(document=db.document, engine=db.engine)
        assert [(w.rule, w.kind) for w in warnings] == [(rule, "empty-path")]

    def test_rule_for_userless_role_flagged(self):
        db = make_db()
        db.subjects.add_role("lonely")
        rule = db.policy.grant("read", "//*", "lonely")
        warnings = db.policy.lint(document=db.document, engine=db.engine)
        assert [(w.rule, w.kind) for w in warnings] == [(rule, "no-audience")]

    def test_no_audience_found_without_document_too(self):
        db = make_db()
        db.subjects.add_role("lonely")
        rule = db.policy.grant("read", "//*", "lonely")
        warnings = db.policy.lint()
        assert [(w.rule, w.kind) for w in warnings] == [(rule, "no-audience")]

    def test_structural_lint_cannot_see_shadowing(self):
        db = make_db()
        db.policy.grant("read", "//a", "staff")
        db.policy.deny("read", "//*", "staff")
        assert db.policy.lint() == []  # needs a document

    def test_warning_str_is_readable(self):
        db = make_db()
        db.policy.grant("read", "//zzz", "staff")
        (warning,) = db.policy.lint(document=db.document, engine=db.engine)
        assert isinstance(warning, PolicyLintWarning)
        assert "empty-path" in str(warning)
        assert "//zzz" in str(warning)


class TestDatabaseApi:
    def test_lint_policy_convenience(self):
        db = make_db()
        db.policy.grant("read", "//zzz", "staff")
        assert [w.kind for w in db.lint_policy()] == ["empty-path"]

    def test_paper_policy_is_clean(self):
        # The equation-13 policy has no dead rules: every rule decides
        # at least one (privilege, node) outcome for some user.
        db = hospital_database()
        assert db.lint_policy() == []

    def test_warnings_sorted_by_priority(self):
        db = make_db()
        db.policy.grant("read", "//zzz", "staff", priority=5)
        db.policy.grant("update", "//qqq", "staff", priority=3)
        warnings = db.lint_policy()
        assert [w.rule.priority for w in warnings] == [3, 5]
