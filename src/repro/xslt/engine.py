"""The mini-XSLT processor: apply a stylesheet to a document.

Processing model (XSLT 1.0 core):

1. start by processing the document node;
2. to process a node, find the highest-priority matching template (or
   the built-in rule) and evaluate its body;
3. ``apply-templates`` selects nodes (XPath, relative to the context
   node) and processes each in document order.

Built-in rules: document/element nodes apply templates to attributes
and children; text and attribute nodes copy their value through;
comments and processing instructions produce nothing.

Pattern matching is implemented by evaluating each match pattern once
per (stylesheet, document) pair from the root and caching the selected
node-set -- sound for the XPath-pattern subset used here, and it keeps
matching O(1) per node after the warm-up pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..xmltree.document import XMLDocument
from ..xmltree.labels import DOCUMENT_ID, NodeId
from ..xmltree.node import NodeKind
from ..xpath.engine import XPathEngine
from .ast import (
    ApplyTemplates,
    AttributeNamed,
    Copy,
    ElementNamed,
    Instruction,
    Stylesheet,
    TemplateRule,
    TextLiteral,
    ValueOf,
)

__all__ = ["XSLTError", "apply_stylesheet"]


class XSLTError(Exception):
    """Unknown instruction or an instruction used in a bad context."""


class _Transformer:
    """Single-use transformation of one document by one stylesheet."""

    def __init__(
        self,
        stylesheet: Stylesheet,
        source: XMLDocument,
        engine: Optional[XPathEngine] = None,
    ) -> None:
        self.stylesheet = stylesheet
        self.source = source
        self.engine = engine if engine is not None else XPathEngine()
        self.output = XMLDocument()
        self._match_cache: Dict[str, Set[NodeId]] = {}

    # -- pattern matching -------------------------------------------------
    def _matches(self, pattern: str, nid: NodeId) -> bool:
        selected = self._match_cache.get(pattern)
        if selected is None:
            selected = set(self.engine.select(self.source, pattern))
            self._match_cache[pattern] = selected
        return nid in selected

    def _best_template(self, nid: NodeId) -> Optional[TemplateRule]:
        best: Optional[TemplateRule] = None
        best_key: Tuple[float, int] = (float("-inf"), -1)
        for index, template in enumerate(self.stylesheet.templates):
            if not self._matches(template.match, nid):
                continue
            key = (template.priority, index)
            if key > best_key:
                best, best_key = template, key
        return best

    # -- processing --------------------------------------------------------
    def process(self, nid: NodeId, out_parent: NodeId) -> None:
        template = self._best_template(nid)
        if template is not None:
            self.run_body(template.body, nid, out_parent)
            return
        self._builtin(nid, out_parent)

    def _builtin(self, nid: NodeId, out_parent: NodeId) -> None:
        kind = self.source.kind(nid)
        if kind in (NodeKind.DOCUMENT, NodeKind.ELEMENT):
            for child in self._selectable_children(nid):
                self.process(child, out_parent)
        elif kind is NodeKind.TEXT:
            self.output.append_child(
                out_parent, NodeKind.TEXT, self.source.label(nid)
            )
        elif kind is NodeKind.ATTRIBUTE:
            node = self.source.node(nid)
            self._emit_attribute(out_parent, node.label, node.value)
        # comments / PIs: built-in produces nothing.

    def _emit_attribute(self, out_parent: NodeId, name: str, value: str) -> None:
        """Attach an attribute if the output parent can carry one.

        Emitting an attribute with no element being constructed is a
        recoverable error in XSLT 1.0 (the attribute is ignored).
        """
        if self.output.kind(out_parent) is NodeKind.ELEMENT:
            self.output.set_attribute(out_parent, name, value)

    def _selectable_children(self, nid: NodeId) -> List[NodeId]:
        if self.source.kind(nid) is NodeKind.ELEMENT:
            return self.source.attributes(nid) + self.source.children(nid)
        return self.source.children(nid)

    def run_body(
        self,
        body: Sequence[Instruction],
        context: NodeId,
        out_parent: NodeId,
    ) -> None:
        for instruction in body:
            self.run_instruction(instruction, context, out_parent)

    def run_instruction(
        self, instruction: Instruction, context: NodeId, out_parent: NodeId
    ) -> None:
        if isinstance(instruction, ApplyTemplates):
            selected = self.engine.select(
                self.source, instruction.select, context_node=context
            )
            # Include attributes for the default node() select: the
            # security processor must route them through templates too.
            if instruction.select == "node()" and self.source.kind(
                context
            ) is NodeKind.ELEMENT:
                selected = self.source.attributes(context) + selected
            for nid in selected:
                self.process(nid, out_parent)
            return
        if isinstance(instruction, Copy):
            node = self.source.node(context)
            if node.kind is NodeKind.DOCUMENT:
                self.run_body(instruction.body, context, out_parent)
            elif node.kind is NodeKind.ELEMENT:
                fresh = self.output.append_child(
                    out_parent, NodeKind.ELEMENT, node.label
                )
                self.run_body(instruction.body, context, fresh)
            elif node.kind is NodeKind.TEXT:
                self.output.append_child(out_parent, NodeKind.TEXT, node.label)
            elif node.kind is NodeKind.ATTRIBUTE:
                self._emit_attribute(out_parent, node.label, node.value)
            else:  # pragma: no cover - comments/PIs
                pass
            return
        if isinstance(instruction, ElementNamed):
            fresh = self.output.append_child(
                out_parent, NodeKind.ELEMENT, instruction.name
            )
            self.run_body(instruction.body, context, fresh)
            return
        if isinstance(instruction, AttributeNamed):
            self._emit_attribute(
                out_parent, instruction.name, instruction.value
            )
            return
        if isinstance(instruction, TextLiteral):
            if instruction.value:
                self.output.append_child(
                    out_parent, NodeKind.TEXT, instruction.value
                )
            return
        if isinstance(instruction, ValueOf):
            value = self.engine.evaluate(
                self.source, instruction.select, context_node=context
            )
            from ..xpath.values import to_string

            text = to_string(value, self.source)
            if text:
                self.output.append_child(out_parent, NodeKind.TEXT, text)
            return
        raise XSLTError(f"unknown instruction {instruction!r}")


def apply_stylesheet(
    stylesheet: Stylesheet,
    source: XMLDocument,
    engine: Optional[XPathEngine] = None,
) -> XMLDocument:
    """Transform ``source`` by ``stylesheet``; returns a new document.

    Args:
        stylesheet: the template rules.
        source: input document (never mutated).
        engine: XPath engine for select/match expressions (a strict
            default engine if omitted).
    """
    transformer = _Transformer(stylesheet, source, engine)
    transformer.process(DOCUMENT_ID, DOCUMENT_ID)
    return transformer.output
