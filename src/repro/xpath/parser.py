"""Recursive-descent parser for XPath 1.0 expressions.

Grammar follows the XPath 1.0 recommendation; ``//`` desugars to
``/descendant-or-self::node()/`` and the abbreviations ``.``, ``..`` and
``@`` expand to ``self::node()``, ``parent::node()`` and ``attribute::``
during parsing, so the evaluator only ever sees canonical steps.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

from .ast import (
    AXES,
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    Negate,
    NodeTest,
    NumberLiteral,
    PathExpr,
    Step,
    UnionExpr,
    VariableRef,
)
from .lexer import Token, XPathSyntaxError, tokenize

__all__ = ["parse_xpath", "XPathSyntaxError"]

_KIND_TESTS = frozenset({"text", "node", "comment", "processing-instruction"})

#: The step ``descendant-or-self::node()`` that ``//`` abbreviates.
_DESCENDANT_OR_SELF = Step("descendant-or-self", KindTest("node"))


class _Parser:
    """Single-use parser over a token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- primitives ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.current.position)

    def expect_op(self, value: str) -> None:
        if not self.current.is_op(value):
            raise self.error(f"expected {value!r}")
        self.advance()

    def at_op(self, *values: str) -> bool:
        return self.current.is_op(*values)

    # -- expression grammar (precedence climbing) ----------------------
    def parse(self) -> Expr:
        expr = self.parse_or()
        if self.current.kind != "eof":
            raise self.error(f"unexpected trailing input {self.current.value!r}")
        return expr

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at_op("or"):
            self.advance()
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_equality()
        while self.at_op("and"):
            self.advance()
            left = BinaryOp("and", left, self.parse_equality())
        return left

    def parse_equality(self) -> Expr:
        left = self.parse_relational()
        while self.at_op("=", "!="):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_relational())
        return left

    def parse_relational(self) -> Expr:
        left = self.parse_additive()
        while self.at_op("<", ">", "<=", ">="):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.at_op("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.at_op("*", "div", "mod"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.at_op("-"):
            self.advance()
            return Negate(self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> Expr:
        left = self.parse_path_expr()
        while self.at_op("|"):
            self.advance()
            left = UnionExpr(left, self.parse_path_expr())
        return left

    # -- paths ----------------------------------------------------------
    def parse_path_expr(self) -> Expr:
        if self.starts_location_path():
            return self.parse_location_path()
        primary = self.parse_primary()
        predicates = self.parse_predicates()
        expr: Expr = FilterExpr(primary, predicates) if predicates else primary
        if self.at_op("/", "//"):
            steps: List[Step] = []
            while self.at_op("/", "//"):
                if self.advance().value == "//":
                    steps.append(_DESCENDANT_OR_SELF)
                steps.append(self.parse_step())
            return PathExpr(expr, tuple(steps))
        return expr

    def starts_location_path(self) -> bool:
        token = self.current
        if token.is_op("/", "//", ".", "..", "@"):
            return True
        if token.kind != "name":
            return False
        # A name starts a location path unless it is a function call --
        # except kind tests, which are steps despite the parenthesis.
        nxt = self.tokens[self.index + 1]
        if nxt.is_op("(") and token.value not in _KIND_TESTS:
            return False
        return True

    def parse_location_path(self) -> LocationPath:
        steps: List[Step] = []
        absolute = False
        if self.at_op("/", "//"):
            absolute = True
            if self.advance().value == "//":
                steps.append(_DESCENDANT_OR_SELF)
            elif self.current.kind == "eof" or self.at_op(")", "]", ",", "|"):
                # Bare "/" selects just the document node.
                return LocationPath(True, ())
        steps.append(self.parse_step())
        while self.at_op("/", "//"):
            if self.advance().value == "//":
                steps.append(_DESCENDANT_OR_SELF)
            steps.append(self.parse_step())
        return LocationPath(absolute, tuple(steps))

    def parse_step(self) -> Step:
        if self.at_op("."):
            self.advance()
            return Step("self", KindTest("node"), self.parse_predicates())
        if self.at_op(".."):
            self.advance()
            return Step("parent", KindTest("node"), self.parse_predicates())
        axis = "child"
        if self.at_op("@"):
            self.advance()
            axis = "attribute"
        elif (
            self.current.kind == "name"
            and self.tokens[self.index + 1].is_op("::")
        ):
            axis = self.advance().value
            if axis not in AXES:
                raise self.error(f"unknown axis {axis!r}")
            self.advance()  # '::'
        test = self.parse_node_test(axis)
        return Step(axis, test, self.parse_predicates())

    def parse_node_test(self, axis: str) -> NodeTest:
        token = self.current
        if token.kind != "name":
            raise self.error("expected a node test")
        self.advance()
        if token.value in _KIND_TESTS and self.at_op("("):
            self.advance()
            target = ""
            if self.current.kind == "literal":
                if token.value != "processing-instruction":
                    raise self.error("only processing-instruction() takes a literal")
                target = self.advance().value
            self.expect_op(")")
            return KindTest(token.value, target)
        return NameTest(token.value)

    def parse_predicates(self) -> Tuple[Expr, ...]:
        predicates: List[Expr] = []
        while self.at_op("["):
            self.advance()
            predicates.append(self.parse_or())
            self.expect_op("]")
        return tuple(predicates)

    # -- primary expressions ---------------------------------------------
    def parse_primary(self) -> Expr:
        token = self.current
        if token.kind == "variable":
            self.advance()
            return VariableRef(token.value)
        if token.is_op("("):
            self.advance()
            inner = self.parse_or()
            self.expect_op(")")
            return inner
        if token.kind == "literal":
            self.advance()
            return Literal(token.value)
        if token.kind == "number":
            self.advance()
            return NumberLiteral(float(token.value))
        if token.kind == "name" and self.tokens[self.index + 1].is_op("("):
            name = self.advance().value
            self.advance()  # '('
            args: List[Expr] = []
            if not self.at_op(")"):
                args.append(self.parse_or())
                while self.at_op(","):
                    self.advance()
                    args.append(self.parse_or())
            self.expect_op(")")
            return FunctionCall(name, tuple(args))
        raise self.error(f"unexpected token {token.value!r}")


@lru_cache(maxsize=4096)
def parse_xpath(expression: str) -> Expr:
    """Parse an XPath 1.0 expression into an AST.

    Parsed ASTs are immutable, so results are cached; the security layer
    re-evaluates the same policy paths constantly.

    Raises:
        XPathSyntaxError: on malformed input.
    """
    return _Parser(tokenize(expression)).parse()
