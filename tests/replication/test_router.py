"""ReplicationRouter: write routing, read-your-writes, failover."""

import pytest

from repro.replication import Replica, ReplicationRouter
from repro.serving import DatabaseServer
from repro.testing.faults import faults

from .conftest import append_script, state_bytes


@pytest.fixture(autouse=True)
def clean_injector():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def stack(primary):
    """primary server + two replicas + tracing router."""
    server = DatabaseServer(primary)
    replicas = [Replica(primary.wal.directory) for _ in range(2)]
    router = ReplicationRouter(server, replicas, trace=True)
    return server, replicas, router


class TestRouting:
    def test_writes_always_go_to_the_primary(self, primary, stack):
        server, replicas, router = stack
        router.execute("w1", append_script("a"))
        assert primary.version == 1
        assert all(r.version == 0 for r in replicas)  # not yet shipped
        assert router.stats()["writes_routed"] == 1

    def test_fresh_replica_serves_the_read(self, primary, stack):
        server, replicas, router = stack
        xml = router.read_xml("w2")  # never wrote: any copy is fine
        assert "entry" in xml
        stats = router.stats()
        assert stats["reads_to_replicas"] == 1
        assert stats["reads_to_primary"] == 0

    def test_read_your_writes_waits_out_the_lag(self, primary, stack):
        server, replicas, router = stack
        router.execute("w1", append_script("a"))
        assert all(r.version == 0 for r in replicas)
        xml = router.read_xml("w1")
        assert ">x<" in xml  # the write is visible to its author
        decision = router.decisions[-1]
        assert decision.served_version >= decision.token == 1

    def test_every_decision_satisfies_read_your_writes(
        self, primary, stack
    ):
        server, replicas, router = stack
        for i in range(5):
            router.execute("w1", append_script(f"s{i}"))
            router.read_xml("w1")
            router.read_xml("w2")
        for decision in router.decisions:
            assert decision.served_version >= decision.token

    def test_zero_wait_falls_through_to_the_primary(self, primary, stack):
        server, replicas, router = stack
        router._max_wait = 0  # never wait: lag -> primary immediately
        router._poll_replicas = False
        router.execute("w1", append_script("a"))
        xml = router.read_xml("w1")
        assert ">x<" in xml
        stats = router.stats()
        assert stats["reads_to_primary"] == 1
        assert router.decisions[-1].source == "primary"

    def test_reads_advance_the_token_monotonically(self, primary, stack):
        server, replicas, router = stack
        assert router.token("w2") == 0
        router.execute("w1", append_script("a"))
        for replica in replicas:
            replica.sync()
        router.read_xml("w2")
        # w2 saw version 1: their token pins monotonic reads there.
        assert router.token("w2") == 1

    def test_deadline_overrides_the_default_budget(self, primary, stack):
        server, replicas, router = stack
        router._poll_replicas = False  # lag can never clear
        router.execute("w1", append_script("a"))
        router.read_xml("w1", deadline=0)
        assert router.decisions[-1].source == "primary"


class TestFailover:
    def rot(self, replica):
        from repro.xmltree import NodeKind

        doc = replica.database.document
        doc.append_child(doc.root, NodeKind.ELEMENT, "rot")

    def test_quarantined_replica_is_never_picked(self, primary, stack):
        server, replicas, router = stack
        self.rot(replicas[0])
        primary.wal.checkpoint(primary)
        for replica in replicas:
            try:
                replica.sync()
            except Exception:
                pass
        assert replicas[0].quarantined and not replicas[1].quarantined
        for _ in range(5):
            router.read_xml("w2")
        sources = {d.source for d in router.decisions}
        assert replicas[0].replica_id not in sources
        assert router.stats()["quarantine_skips"] > 0

    def test_all_replicas_quarantined_primary_serves(self, primary, stack):
        server, replicas, router = stack
        for replica in replicas:
            self.rot(replica)
        primary.wal.checkpoint(primary)
        for replica in replicas:
            try:
                replica.sync()
            except Exception:
                pass
        assert all(r.quarantined for r in replicas)
        xml = router.read_xml("w1")
        assert "entry" in xml
        assert router.decisions[-1].source == "primary"

    def test_reseeded_replica_rejoins_the_pool(self, primary, stack):
        server, replicas, router = stack
        self.rot(replicas[0])
        primary.wal.checkpoint(primary)
        for replica in replicas:
            try:
                replica.sync()
            except Exception:
                pass
        replicas[0].catch_up()
        assert not replicas[0].quarantined
        assert state_bytes(replicas[0].database) == state_bytes(primary)

    def test_remove_replica_shrinks_the_pool(self, primary, stack):
        server, replicas, router = stack
        router.remove_replica(replicas[0])
        assert router.replicas == (replicas[1],)


class TestStats:
    def test_stats_surface_lag_and_health(self, primary, stack):
        server, replicas, router = stack
        router.execute("w1", append_script("a"))
        stats = router.stats()
        assert stats["replica_count"] == 2
        assert stats["max_lag"] == 1  # neither replica polled yet
        assert stats["primary_version"] == 1
        for member in stats["replicas"]:
            assert member["lag"] == 1
            assert member["state"] == "following"

    def test_server_stats_expose_wal_failed_state(self, primary, stack):
        server, replicas, router = stack
        stats = server.stats()
        assert stats["wal_attached"] is True
        assert stats["wal_failed"] is None  # healthy log
