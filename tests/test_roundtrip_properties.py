"""Property-based crash-safety: committed data survives interrupted saves.

For random databases (document + subjects + policy) and every storage
kill-point: save the database, inject a failure into a subsequent save,
and check that a lenient load of the file recovers exactly the committed
state -- nothing lost, nothing dropped.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    LoadReport,
    dump_database,
    load_database,
    load_from_file,
    save_to_file,
)
from repro.testing.faults import InjectedFault, faults
from repro.xupdate import Rename

from tests.strategies import secure_databases

pytestmark = pytest.mark.fault

STORAGE_KILL_POINTS = ("mid-write", "before-rename")


class TestInterruptedSaveProperties:
    @given(
        db=secure_databases(),
        point=st.sampled_from(STORAGE_KILL_POINTS),
    )
    @settings(max_examples=30, deadline=None)
    def test_kill_then_lenient_load_never_loses_committed_data(self, db, point):
        committed = dump_database(db) + "\n"
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "db.xml")
            save_to_file(db, path)
            # A later, doomed save must not disturb the committed state.
            db.admin_update(Rename("/*", "renamed"))
            faults.arm(point)
            try:
                with pytest.raises(InjectedFault):
                    save_to_file(db, path)
            finally:
                faults.disarm()
            report = LoadReport()
            again = load_from_file(path, mode="lenient", report=report)
            assert report.clean
            assert dump_database(again) + "\n" == committed

    @given(db=secure_databases())
    @settings(max_examples=30, deadline=None)
    def test_lenient_load_of_clean_dump_equals_strict_load(self, db):
        text = dump_database(db)
        report = LoadReport()
        lenient_db = load_database(text, mode="lenient", report=report)
        strict_db = load_database(text)
        assert report.clean
        assert list(lenient_db.policy.facts()) == list(strict_db.policy.facts())
        assert lenient_db.subjects.subjects == strict_db.subjects.subjects
        assert dump_database(lenient_db) == dump_database(strict_db)
