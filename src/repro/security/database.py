"""The secure XML database facade (paper section 4).

:class:`SecureXMLDatabase` assembles the whole model: a source document
(theory ``db``), a subject hierarchy (set ``S`` + axioms 11-12), a
security policy (set ``P`` + axiom 14), view derivation (axioms 15-17)
and access-controlled updates (axioms 18-25).  Users interact through
:class:`~repro.security.session.Session` objects obtained via
:meth:`login`.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from typing import Any, List, Optional

from ..errors import ConcurrentUpdateError
from ..xmltree.document import XMLDocument
from ..xmltree.labels import NumberingScheme
from ..xmltree.parser import parse_xml
from ..xpath.engine import XPathEngine
from ..xupdate.changeset import ChangeSet
from ..xupdate.executor import UpdateResult, XUpdateExecutor
from ..xupdate.operations import UpdateScript, XUpdateOperation
from .audit import AuditLog
from .perm import PermissionResolver, PermissionTable
from .policy import Policy
from .privileges import Privilege
from .session import Session
from .subjects import SubjectError, SubjectHierarchy
from .view import View, ViewBuilder

__all__ = ["CommitOrigin", "SecureXMLDatabase", "Transaction"]

logger = logging.getLogger("repro.security.database")


@dataclass(frozen=True)
class CommitOrigin:
    """What produced a commit -- the write-ahead log's provenance.

    The paper makes ``dbnew`` a pure function of ``db`` and the update
    script, so a commit whose origin carries the script can be logged
    *logically* (the script text) and replayed through the real secure
    executor path.  Commits with no origin (a direct
    :meth:`SecureXMLDatabase.commit` of a document) are still durable --
    the log falls back to a full state record.

    Attributes:
        kind: ``"update"`` (a session's access-controlled script) or
            ``"admin"`` (an unsecured administrative script).
        operation: the committed operation or script.
        user: (update) the session's login name.
        strict: (update) whether denied-operation semantics was strict.
    """

    kind: str
    operation: Any = None
    user: Optional[str] = None
    strict: bool = False


class Transaction:
    """One all-or-nothing theory replacement (``db`` -> ``dbnew``).

    Obtained from :meth:`SecureXMLDatabase.transaction`.  The paper's
    update semantics replaces the whole theory in one step; this object
    makes that operational: between ``begin`` (construction) and
    :meth:`commit`, the database is never observed in an intermediate
    state -- commit installs the new document and bumps the version in
    one swap (invalidating every session's cached view and the
    permission caches keyed by the document), while :meth:`rollback`
    (or an exception inside the ``with`` block) leaves the pre-script
    theory exactly as it was.

    Commit is guarded by optimistic concurrency: if another transaction
    committed since this one began, :class:`ConcurrentUpdateError` is
    raised instead of silently clobbering the interleaved write.

    Example::

        with db.transaction() as txn:
            result = db.write_executor.apply(view, script, strict=True)
            txn.commit(result.document)
    """

    def __init__(self, database: "SecureXMLDatabase") -> None:
        self._database = database
        self._base_version = database.version
        self._base_document = database.document
        self._state = "active"

    @property
    def active(self) -> bool:
        """True until the transaction commits or rolls back."""
        return self._state == "active"

    @property
    def base_version(self) -> int:
        """The database version this transaction started from."""
        return self._base_version

    def commit(
        self,
        document: XMLDocument,
        changes: Optional[ChangeSet] = None,
        origin: Optional[CommitOrigin] = None,
    ) -> None:
        """Install ``document`` as the new theory, atomically.

        Args:
            document: the new source document (``dbnew``).
            changes: the update's structural delta, published to the
                permission and view caches for incremental maintenance;
                None (or a conservative change-set) makes every cache
                fall back to full re-derivation.
            origin: provenance for the write-ahead log (the committed
                script, when there is one); None logs a full state
                record instead.

        Raises:
            ConcurrentUpdateError: another commit happened since this
                transaction began; nothing is installed.
            WalWriteError: the attached write-ahead log could not make
                the commit durable; nothing is installed.
            RuntimeError: the transaction already ended.
        """
        if not self.active:
            raise RuntimeError(f"transaction already {self._state}")
        # The version check and the install must be one atomic step:
        # under real threads, two committers passing the check together
        # would both install and one write would be silently lost.  The
        # database's commit lock makes check-then-install a critical
        # section (readers never take it; the swap itself is a single
        # reference assignment they can observe safely).
        with self._database._commit_lock:
            if self._database.version != self._base_version:
                self._state = "rolled back"
                raise ConcurrentUpdateError(
                    f"database moved from version {self._base_version} to "
                    f"{self._database.version} since this transaction began"
                )
            self._database._install(document, changes, origin)
        self._state = "committed"

    def rollback(self) -> None:
        """End the transaction leaving the database untouched."""
        if self.active:
            self._state = "rolled back"

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None or self.active:
            self.rollback()


class SecureXMLDatabase:
    """An XML database protected by the paper's access control model.

    Args:
        document: the source document.
        subjects: the subject hierarchy; a fresh empty one if omitted.
        policy: the security policy; a fresh empty one (which, under the
            closed-world assumption, denies everything) if omitted.
        audit: audit log receiving write decisions; created if omitted.
        shared_views: serve materialized views from a shared,
            incrementally-maintained cache keyed by permission
            fingerprint (the default).  Disable to rebuild every view
            from scratch per session and version (the seed behaviour,
            kept for ablation benchmarks).

    Example::

        db = SecureXMLDatabase.from_xml("<patients>...</patients>")
        db.subjects.add_role("staff")
        db.subjects.add_user("laporte", member_of="staff")
        db.policy.grant("read", "//*", "staff")
        session = db.login("laporte")
        print(session.read_xml())
    """

    def __init__(
        self,
        document: XMLDocument,
        subjects: Optional[SubjectHierarchy] = None,
        policy: Optional[Policy] = None,
        audit: Optional[AuditLog] = None,
        shared_views: bool = True,
    ) -> None:
        self._document = document
        self._subjects = subjects if subjects is not None else SubjectHierarchy()
        self._policy = (
            policy if policy is not None else Policy(self._subjects)
        )
        if self._policy.subjects is not self._subjects:
            raise ValueError("policy must reference the database's subjects")
        self._audit = audit if audit is not None else AuditLog()
        self._engine = XPathEngine(
            lone_variable_name_test=True, star_matches_text=True
        )
        self._resolver = PermissionResolver(self._engine, cache_paths=True)
        self._view_builder = ViewBuilder(self._resolver)
        self._unsecured = XUpdateExecutor(self._engine)
        from .write import SecureWriteExecutor

        self._write_executor = SecureWriteExecutor(
            self._unsecured, self._audit, resolver=self._resolver
        )
        from .viewcache import ViewCache

        self._view_cache = ViewCache() if shared_views else None
        self._version = 0
        self._commit_lock = threading.Lock()
        self._degraded_view_serves = 0
        self._wal = None
        self._read_only = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_xml(
        cls,
        source: str,
        subjects: Optional[SubjectHierarchy] = None,
        policy: Optional[Policy] = None,
        scheme: Optional[NumberingScheme] = None,
    ) -> "SecureXMLDatabase":
        """Build a database by parsing XML text."""
        return cls(parse_xml(source, scheme), subjects, policy)

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    @property
    def document(self) -> XMLDocument:
        """The source document (the administrator's unrestricted view)."""
        return self._document

    @property
    def subjects(self) -> SubjectHierarchy:
        return self._subjects

    @property
    def policy(self) -> Policy:
        return self._policy

    @property
    def audit(self) -> AuditLog:
        return self._audit

    @property
    def engine(self) -> XPathEngine:
        """The shared XPath engine (paper-compat options enabled)."""
        return self._engine

    @property
    def resolver(self) -> PermissionResolver:
        return self._resolver

    @property
    def write_executor(self):
        return self._write_executor

    @property
    def version(self) -> int:
        """Monotonic commit counter; sessions use it to refresh views."""
        return self._version

    @property
    def read_only(self) -> bool:
        """True while the database refuses commits (a serving replica).

        Set by :meth:`set_read_only`; the replication layer marks a
        replica's database read-only so any write that sneaks past the
        router (a cached session, a direct ``admin_update``) fails with
        :class:`~repro.errors.ReadOnlyReplica` instead of silently
        forking the replica from the primary's history.  The replica's
        own apply path lifts the guard around each replayed record.
        """
        return self._read_only

    def set_read_only(self, flag: bool) -> None:
        """Raise (or lift) the commit guard; see :attr:`read_only`."""
        self._read_only = bool(flag)

    # ------------------------------------------------------------------
    # sessions and views
    # ------------------------------------------------------------------
    def login(self, user: str, enforcement: str = "materialized") -> Session:
        """Open a session for a declared *user*.

        Args:
            user: the login name (must be a user, not a role).
            enforcement: ``"materialized"`` builds the pruned view
                document of axioms 15-17 per version (the paper's
                presentation); ``"lazy"`` enforces the same axioms per
                node access without copying (the filter approach the
                paper's conclusion proposes).  Both return identical
                query answers -- see tests/security/test_lazy.py.

        Raises:
            SubjectError: if the subject is unknown or is a role (roles
                cannot log in; they exist to be granted to).
        """
        if user not in self._subjects:
            raise SubjectError(f"unknown subject {user!r}")
        if not self._subjects.is_user(user):
            raise SubjectError(f"{user!r} is a role; only users can log in")
        return Session(self, user, enforcement)

    def build_view(self, user: str) -> View:
        """Derive the view for any declared subject (axioms 15-17).

        With ``shared_views`` (the default) the view is served from the
        shared cache: users with identical, ``$USER``-free permission
        tables receive facades over one materialization, and stale
        cached views are patched from commit change-sets instead of
        rebuilt.  Served views are shared state -- treat them as
        immutable, as every in-tree consumer already does.

        The degradation ladder (DESIGN.md §9): a failing incremental
        patch is retried as a full build *inside* the cache; if the
        shared cache itself raises, the failure is logged, counted
        (``degraded_view_serves`` in :meth:`stats`), and the view is
        rebuilt per-session -- a cache bug never fails a read.
        """
        if self._view_cache is not None:
            try:
                return self._view_cache.view_for(self, user)
            except SubjectError:
                raise  # a real domain error, not a cache failure
            except Exception:
                self._degraded_view_serves += 1
                logger.exception(
                    "shared view cache failed for %r; rebuilding "
                    "per-session", user
                )
        return self._view_builder.build(self._document, self._policy, user)

    def build_lazy_view(self, user: str):
        """Derive a lazily-enforced view (same axioms, no copy)."""
        from .lazy import build_lazy_view

        return build_lazy_view(
            self._document, self._policy, user, self._resolver
        )

    def permissions_for(self, user: str) -> PermissionTable:
        """Derive the full ``perm`` table for a subject (axiom 14).

        Served through the resolver's fingerprint cache: repeated calls
        for users sharing a permission fingerprint cost O(1) until the
        document or the applicable rules change.
        """
        return self._resolver.resolve_cached(
            self._document, self._policy, user
        )

    def check(self, user: str, privilege, nid) -> bool:
        """Decide one ``perm(user, nid, privilege)`` fact.

        The enforcement-mode ladder (DESIGN.md §11): when every
        applicable rule for the privilege is automata-eligible the
        answer comes from NFA membership over the node's label chain --
        O(path length), zero rule-path evaluation, zero view
        materialization.  Otherwise the resolved (cached) permission
        table answers.  Both modes derive from axiom 14, so the answer
        is identical; only the cost differs.
        """
        privilege = Privilege.parse(privilege)
        decision = self._resolver.holds_static(
            self._document, self._policy, user, nid, privilege
        )
        if decision is not None:
            return decision
        return self.permissions_for(user).holds(nid, privilege)

    def stats(self) -> dict:
        """Serving-layer counters: permission-cache and view-cache
        decisions since construction, plus the commit count.

        Keys are the union of
        :attr:`repro.security.perm.PermissionResolver.stats` and
        :attr:`repro.security.viewcache.ViewCache.stats` (prefixed
        ``view_``), e.g. ``view_hits`` / ``view_incremental_patches`` /
        ``full_resolves``, plus the degradation ledger:
        ``degraded_rebuilds`` (resolver path-patches and view patches
        that raised and were re-derived from scratch, summed) and
        ``degraded_view_serves`` (reads that fell all the way back
        from the shared cache to a per-session build).
        """
        out = {"version": self._version, "read_only": self._read_only}
        out.update(self._resolver.stats)
        if self._view_cache is not None:
            out.update(
                {f"view_{k}": v for k, v in self._view_cache.stats.items()}
            )
            out["degraded_rebuilds"] = (
                out.get("degraded_rebuilds", 0)
                + self._view_cache.stats.get("degraded_rebuilds", 0)
            )
        out["degraded_view_serves"] = self._degraded_view_serves
        return out

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def admin_update(
        self, operation: "XUpdateOperation | UpdateScript | str"
    ) -> UpdateResult:
        """Apply an update with *no* access control (the administrator /
        database-owner path, outside the paper's model).

        Transactional like :meth:`Session.execute`: a failing script
        (:class:`~repro.errors.UpdateAborted`) commits nothing.  Like
        ``execute``, accepts an operation, a script, or XUpdate XML
        text.
        """
        if isinstance(operation, str):
            from ..xupdate.parser import parse_xupdate

            operation = parse_xupdate(operation)
        with self.transaction() as txn:
            result = self._unsecured.apply(self._document, operation)
            txn.commit(
                result.document,
                result.changes,
                origin=CommitOrigin("admin", operation=operation),
            )
        return result

    def transaction(self) -> Transaction:
        """Begin an all-or-nothing theory replacement."""
        return Transaction(self)

    def commit(
        self, document: XMLDocument, changes: Optional[ChangeSet] = None
    ) -> None:
        """Install a new source document and bump the version.

        Prefer :meth:`transaction`, which adds rollback-on-error and a
        concurrent-commit guard around this swap.
        """
        self._install(document, changes)

    def _install(
        self,
        document: XMLDocument,
        changes: Optional[ChangeSet] = None,
        origin: Optional[CommitOrigin] = None,
    ) -> None:
        # The single point where the theory is replaced: document and
        # version move together, so cached views (keyed by version) and
        # permission caches (keyed weakly by document identity and its
        # mutation stamp) can never observe a half-installed state.
        # The change-set (possibly None = "unknown extent") is published
        # to the permission resolver and the view cache *after* the
        # swap, so their maintenance sees the installed generation.
        if self._read_only:
            from ..errors import ReadOnlyReplica

            raise ReadOnlyReplica(
                "this database serves as a read-only replica; route the "
                "write to the primary"
            )
        if self._wal is not None:
            # Write-ahead: the record must be durable *before* anyone
            # can observe the new theory.  A failed append raises
            # (WalWriteError) and nothing is installed -- the commit
            # simply never happened.
            self._wal.log_commit(
                self._version + 1,
                document,
                self._subjects,
                self._policy,
                changes,
                origin,
            )
        old_document = self._document
        self._document = document
        self._version += 1
        self._resolver.note_commit(old_document, document, changes)
        if self._view_cache is not None:
            self._view_cache.note_commit(self._version, changes)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @property
    def wal(self):
        """The attached :class:`repro.wal.WriteAheadLog`, or None."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Make every future commit write-ahead durable through ``wal``.

        Commits append their record (script or state) before installing;
        subject-hierarchy and policy mutations are captured through the
        hierarchies' mutation listeners.  The caller is responsible for
        the log starting in sync with the current state (normally by
        checkpointing right after attach, or by attaching the log that
        recovery just replayed).
        """
        if self._wal is not None:
            raise ValueError("a write-ahead log is already attached")
        wal.bind(self)
        self._wal = wal

    def detach_wal(self):
        """Stop logging (snapshot-only durability); returns the old log.

        Idempotent; used by the serving layer to degrade when the log
        keeps failing, and by recovery while replaying (a replay must
        not re-log itself).
        """
        wal, self._wal = self._wal, None
        if wal is not None:
            wal.unbind()
        return wal

    def restore_version(self, version: int) -> None:
        """Set the version counter; recovery-only.

        After loading a checkpoint snapshot the in-memory database is
        at version 0 but *represents* the checkpointed version; replay
        needs the counter to match so that each replayed record's
        stamped version lines up (the recovery invariant).
        """
        if version < 0:
            raise ValueError("version must be >= 0")
        with self._commit_lock:
            self._version = version

    # ------------------------------------------------------------------
    # policy hygiene
    # ------------------------------------------------------------------
    def lint_policy(self) -> List["object"]:
        """Run the policy linter against the current document.

        Convenience for ``db.policy.lint(document=db.document,
        engine=db.engine)``; see :meth:`repro.security.policy.Policy.lint`.
        """
        return self._policy.lint(document=self._document, engine=self._engine)
