"""XPathEngine facade: select/evaluate/xpath_facts and compat options."""

import pytest

from repro.xmltree import parse_xml
from repro.xpath import XPathEngine, XPathEvaluationError, XPathSyntaxError


@pytest.fixture
def doc():
    return parse_xml("<r><a>1</a><b>2</b></r>")


class TestFacade:
    def test_select_returns_node_set(self, doc):
        engine = XPathEngine()
        nodes = engine.select(doc, "//a")
        assert len(nodes) == 1
        assert doc.label(nodes[0]) == "a"

    def test_select_rejects_scalar_result(self, doc):
        engine = XPathEngine()
        with pytest.raises(XPathEvaluationError):
            engine.select(doc, "count(//a)")
        with pytest.raises(XPathEvaluationError):
            engine.select(doc, "'text'")

    def test_evaluate_returns_any_type(self, doc):
        engine = XPathEngine()
        assert engine.evaluate(doc, "count(//*)") == 3.0
        assert engine.evaluate(doc, "string(//a)") == "1"
        assert engine.evaluate(doc, "//a = 1") is True

    def test_compile_surfaces_syntax_errors(self, doc):
        engine = XPathEngine()
        with pytest.raises(XPathSyntaxError):
            engine.compile("//a[")

    def test_context_node_parameter(self, doc):
        engine = XPathEngine()
        a = engine.select(doc, "//a")[0]
        sibs = engine.select(doc, "following-sibling::*", context_node=a)
        assert [doc.label(n) for n in sibs] == ["b"]

    def test_variables_parameter(self, doc):
        engine = XPathEngine()
        assert engine.evaluate(doc, "$X + 1", variables={"X": 2.0}) == 3.0

    def test_node_set_variable(self, doc):
        engine = XPathEngine()
        a_nodes = engine.select(doc, "//a")
        got = engine.select(doc, "$N/text()", variables={"N": a_nodes})
        assert len(got) == 1


class TestXPathFacts:
    def test_xpath_facts_triples(self, doc):
        """The paper's xpath(p, n, v) reading (section 3.4)."""
        engine = XPathEngine()
        facts = engine.xpath_facts(doc, "//a")
        assert len(facts) == 1
        ((path, nid, label),) = facts
        assert path == "//a"
        assert label == "a"
        assert nid in doc

    def test_xpath_facts_empty_for_no_match(self, doc):
        engine = XPathEngine()
        assert engine.xpath_facts(doc, "//zzz") == set()

    def test_xpath_facts_with_variables(self, doc):
        engine = XPathEngine(lone_variable_name_test=True)
        facts = engine.xpath_facts(doc, "//*[$USER]", variables={"USER": "a"})
        assert {label for (_p, _n, label) in facts} == {"a"}


class TestEngineIsolation:
    def test_options_do_not_leak_between_engines(self, doc):
        strict = XPathEngine()
        compat = XPathEngine(star_matches_text=True)
        assert strict.select(doc, "//a/*") == []
        assert len(compat.select(doc, "//a/*")) == 1
        # The strict engine is still strict afterwards.
        assert strict.select(doc, "//a/*") == []

    def test_engines_share_parse_cache_safely(self, doc):
        """The AST cache is keyed by text only; semantics differ per
        engine because options live in the evaluation context."""
        strict = XPathEngine()
        compat = XPathEngine(star_matches_text=True)
        path = "//b/*"
        first = compat.select(doc, path)
        second = strict.select(doc, path)
        assert len(first) == 1 and second == []
